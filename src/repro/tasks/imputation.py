"""Imputation and cloze-pretraining tasks (paper Sec. 3 and A.7.2).

Both share the same mechanics: scale the series to [0, 1], replace a
random subset of timestamps by the sentinel -1, and train the model to
reconstruct the original values at the masked positions under a masked
MSE.  Pretraining *is* the imputation objective applied to the unlabeled
pool — :class:`PretrainTask` is a named alias with the paper's mask rate.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.masking import Scaler, apply_timestamp_mask
from repro.errors import ConfigError
from repro.nn import MaskedMSELoss
from repro.rng import get_rng

__all__ = ["ImputationTask", "PretrainTask"]


class ImputationTask:
    """Masked-reconstruction objective with per-batch random masks."""

    name = "imputation"

    def __init__(
        self,
        scaler: Scaler,
        mask_rate: float = 0.2,
        mask_value: float = -1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.scaler = scaler
        self.mask_rate = float(mask_rate)
        self.mask_value = float(mask_value)
        self._rng = get_rng(rng)
        self._loss = MaskedMSELoss()

    def _prepare(self, batch: Mapping[str, np.ndarray]):
        scaled = self.scaler.transform(batch["x"])
        valid = batch.get("mask")
        if valid is None:
            masked, mask = apply_timestamp_mask(
                scaled, self.mask_rate, rng=self._rng, mask_value=self.mask_value
            )
            return scaled, masked, mask
        # Ragged batch: the cloze mask must target valid timesteps only —
        # padded positions are neither corrupted nor scored.  Build the
        # mask directly (one masked copy, not apply_timestamp_mask's copy
        # plus a corrected redo).
        batch_size, length, channels = scaled.shape
        timestamps = self._rng.random((batch_size, length)) < self.mask_rate
        timestamps &= np.asarray(valid, dtype=bool)
        # Guarantee >= 1 masked timestep per sample; position 0 is always
        # valid under left-aligned padding.
        timestamps[~timestamps.any(axis=1), 0] = True
        mask = np.repeat(timestamps[:, :, None], channels, axis=2)
        masked = scaled.copy()
        masked[mask] = self.mask_value
        return scaled, masked, mask

    @staticmethod
    def _reconstruct(model, masked: np.ndarray, batch: Mapping[str, np.ndarray]) -> Tensor:
        # Mask-aware models declare supports_padding_mask (RitaModel);
        # mask-unaware baselines get a clear error on ragged batches.
        if batch.get("mask") is not None:
            if not getattr(model, "supports_padding_mask", False):
                raise ConfigError(
                    f"{type(model).__name__} does not support padding masks; "
                    "train it on fixed-length batches (no pad_collate mask)"
                )
            return model.reconstruct(Tensor(masked), mask=batch["mask"])
        return model.reconstruct(Tensor(masked))

    def loss(self, model, batch: Mapping[str, np.ndarray]) -> Tensor:
        scaled, masked, mask = self._prepare(batch)
        reconstruction = self._reconstruct(model, masked, batch)
        return self._loss(reconstruction, scaled, mask)

    def evaluate(self, model, batch: Mapping[str, np.ndarray]) -> dict[str, float]:
        scaled, masked, mask = self._prepare(batch)
        with no_grad():
            reconstruction = self._reconstruct(model, masked, batch)
        error = reconstruction.data - scaled
        masked_error = error[mask]
        return {
            "sq_sum": float((masked_error ** 2).sum()),
            "abs_sum": float(np.abs(masked_error).sum()),
            "count": float(mask.sum()),
        }

    @staticmethod
    def summarize(totals: dict[str, float]) -> dict[str, float]:
        count = max(totals.get("count", 0.0), 1.0)
        return {
            "mse": totals.get("sq_sum", 0.0) / count,
            "mae": totals.get("abs_sum", 0.0) / count,
        }


class PretrainTask(ImputationTask):
    """The mask-and-predict pretraining task (mask rate ``p = 0.2``)."""

    name = "pretrain"
