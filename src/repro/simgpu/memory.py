"""Simulated GPU memory accounting.

The paper's artifact runs on an NVIDIA V100 with 16 GB of memory; two of
its results depend on that budget:

* Vanilla attention and TST *fail with OOM* on the MGH dataset
  (length 10,000) — Table 2 and Figure 4;
* the batch-size predictor (Sec. 5.2 / Alg. 2) binary-searches the largest
  batch that stays under 90% of device memory.

This environment has no GPU, so we model the device analytically: a
:class:`MemoryModel` counts the bytes a training step would allocate on
the real device (activations for forward + retained tensors for backward),
and :class:`SimulatedGPU` enforces a capacity, raising
:class:`~repro.errors.SimulatedOOMError` exactly where the real run dies.

The accounting assumes fp32 (4 bytes/element) like the paper's training,
regardless of the NumPy dtype used for the actual computation here.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.errors import ConfigError, SimulatedOOMError

__all__ = [
    "BYTES_PER_ELEMENT",
    "MemoryModel",
    "SimulatedGPU",
    "current_device",
    "use_device",
]

BYTES_PER_ELEMENT = 4
#: The paper's device: an NVIDIA Tesla V100 with 16 GB.  Memory accounting
#: is always done at *paper geometry* (full sequence lengths, full model),
#: even when the actual NumPy computation runs at a scaled-down geometry —
#: that is what reproduces the OOM entries of Table 2 / Figure 4 honestly.
DEFAULT_CAPACITY = 16 * 1024 ** 3


@dataclass
class MemoryModel:
    """Analytic per-step memory model of a RITA-style encoder.

    Parameters mirror the model configuration; all methods return bytes.
    ``backward_factor`` approximates the autograd graph retaining roughly
    one extra copy of each activation for the backward pass.
    """

    dim: int
    n_heads: int
    n_layers: int
    ffn_dim: int
    bytes_per_element: int = BYTES_PER_ELEMENT
    backward_factor: float = 2.0

    # -- attention-specific activation counts (per sample, per layer) -----
    def attention_elements(self, kind: str, n: int, n_groups: int | None = None,
                           feature_dim: int | None = None, proj_dim: int | None = None,
                           window: int | None = None) -> int:
        """Activation element count of one attention module on one sample."""
        heads = self.n_heads
        head_dim = self.dim // heads
        if kind == "vanilla":
            return 2 * heads * n * n
        if kind == "group":
            groups = n_groups if n_groups is not None else n
            groups = min(groups, n)
            return 2 * heads * n * groups + 2 * heads * groups * head_dim
        if kind == "performer":
            m = feature_dim if feature_dim is not None else head_dim
            return 2 * heads * n * m + heads * m * (head_dim + 1)
        if kind == "linformer":
            k = proj_dim if proj_dim is not None else max(n // 4, 1)
            return 2 * heads * n * k + 2 * heads * k * head_dim
        if kind == "local":
            w = window if window is not None else 16
            return 2 * heads * n * min(2 * w + 1, n)
        raise ConfigError(f"unknown attention kind: {kind!r}")

    def layer_elements(self, kind: str, n: int, **kwargs) -> int:
        """Activation elements of one encoder layer on one sample."""
        # QKV + attention output + output projection + 2 norms + residuals.
        dense = 7 * n * self.dim
        ffn = 2 * n * self.ffn_dim + n * self.dim
        return dense + ffn + self.attention_elements(kind, n, **kwargs)

    def step_bytes(self, kind: str, batch_size: int, n: int, **kwargs) -> int:
        """Estimated bytes for one training step (forward + backward)."""
        per_sample = self.n_layers * self.layer_elements(kind, n, **kwargs)
        io = 3 * n * self.dim  # input embeddings + position + output head
        total_elements = batch_size * (per_sample + io)
        return int(total_elements * self.bytes_per_element * self.backward_factor)

    def max_batch_size(self, kind: str, n: int, capacity: int,
                       utilization: float = 0.9, **kwargs) -> int:
        """Largest batch fitting in ``utilization * capacity`` (closed form).

        The batch-size predictor (Alg. 2) *searches* for this value without
        assuming the memory function is linear in the batch size; this
        closed form is the ground truth it should find.
        """
        per_one = self.step_bytes(kind, 1, n, **kwargs)
        if per_one <= 0:
            return 1
        return max(int(utilization * capacity // per_one), 0)


class SimulatedGPU:
    """A context manager enforcing a memory capacity on training steps.

    Usage::

        with SimulatedGPU(capacity=16 * 2**30) as gpu:
            trainer.train(...)  # raises SimulatedOOMError when exceeded
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = int(capacity)
        self.peak_bytes = 0
        self._token = None

    def check(self, requested: int, note: str = "") -> None:
        """Record a request; raise :class:`SimulatedOOMError` when over capacity."""
        requested = int(requested)
        self.peak_bytes = max(self.peak_bytes, requested)
        if requested > self.capacity:
            raise SimulatedOOMError(requested, self.capacity, note)

    def utilization(self, requested: int) -> float:
        """Fraction of capacity a request would use."""
        return requested / self.capacity

    def __enter__(self) -> "SimulatedGPU":
        _DEVICE_STACK.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _DEVICE_STACK.pop()


_DEVICE_STACK: list[SimulatedGPU] = []


def current_device() -> SimulatedGPU | None:
    """The innermost active :class:`SimulatedGPU`, or ``None``."""
    return _DEVICE_STACK[-1] if _DEVICE_STACK else None


@contextlib.contextmanager
def use_device(capacity: int = DEFAULT_CAPACITY):
    """Convenience wrapper: ``with use_device(cap) as gpu: ...``."""
    with SimulatedGPU(capacity) as gpu:
        yield gpu
