"""Simulated GPU memory substrate (capacity enforcement + byte accounting)."""

from repro.simgpu.memory import (
    BYTES_PER_ELEMENT,
    DEFAULT_CAPACITY,
    MemoryModel,
    SimulatedGPU,
    current_device,
    use_device,
)
from repro.errors import SimulatedOOMError

__all__ = [
    "BYTES_PER_ELEMENT",
    "DEFAULT_CAPACITY",
    "MemoryModel",
    "SimulatedGPU",
    "current_device",
    "use_device",
    "SimulatedOOMError",
]
