"""RITA model: config, time-aware convolution, encoder, task heads."""

from repro.model.config import RitaConfig
from repro.model.encoder import RitaEncoder, RitaEncoderLayer, build_attention
from repro.model.rita import RitaModel, TimeAwareConvolution

__all__ = [
    "RitaConfig",
    "RitaEncoder",
    "RitaEncoderLayer",
    "build_attention",
    "RitaModel",
    "TimeAwareConvolution",
]
