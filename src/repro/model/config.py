"""RITA model configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["RitaConfig"]

_ATTENTION_KINDS = {"vanilla", "group", "performer", "linformer", "local"}


@dataclass
class RitaConfig:
    """Configuration of a RITA model (paper Sec. 3 + A.1).

    The paper's reference architecture is an 8-layer stack of 2-head
    attention with 64-dim hidden vectors and convolution kernel size 5;
    those are the defaults.  The scaled-down experiment registry overrides
    ``dim``/``n_layers`` to fit CPU budgets without changing any ratio the
    benchmarks compare.

    Attributes
    ----------
    input_channels:
        Number of timeseries variables ``m``.
    max_len:
        Longest (scaled) timeseries the model will see; sizes the position
        table and Linformer projections.
    dim, n_heads, n_layers, ffn_dim:
        Transformer geometry.  ``ffn_dim`` defaults to ``4 * dim``.
    window_size:
        Width ``w`` of the time-aware convolution kernels (Sec. 3).
    conv_stride:
        Stride of the time-aware convolution.  The paper uses 1 (one
        window per timestamp); larger strides downsample long series —
        a scaling substitution documented in DESIGN.md.
    attention:
        One of ``vanilla | group | performer | linformer | local``.
    n_groups:
        Initial group count ``N`` for group attention.
    recluster_every, drift_tolerance:
        Amortized-reclustering knobs forwarded to
        :class:`~repro.attention.group.GroupAttention`: recluster cadence
        (1 = K-means every step) and the Lemma-1 drift guard for cached
        partitions.
    performer_features, linformer_proj_dim, local_window:
        Baseline-mechanism hyper-parameters.
    dropout:
        Dropout rate inside encoder layers.
    n_classes:
        Output classes for the classification head (``None`` = no head).
    mask_value:
        Sentinel for masked/missing values (paper uses -1 on non-negative
        scaled series).
    """

    input_channels: int
    max_len: int
    dim: int = 64
    n_heads: int = 2
    n_layers: int = 8
    ffn_dim: int | None = None
    window_size: int = 5
    conv_stride: int = 1
    attention: str = "group"
    n_groups: int = 64
    kmeans_iters: int = 2
    recluster_every: int = 1
    drift_tolerance: float = 0.5
    performer_features: int = 64
    linformer_proj_dim: int = 64
    local_window: int = 16
    dropout: float = 0.1
    n_classes: int | None = None
    mask_value: float = -1.0

    def __post_init__(self) -> None:
        if self.attention not in _ATTENTION_KINDS:
            raise ConfigError(
                f"unknown attention {self.attention!r}; expected one of {sorted(_ATTENTION_KINDS)}"
            )
        if self.dim % self.n_heads != 0:
            raise ConfigError(f"dim {self.dim} not divisible by n_heads {self.n_heads}")
        if self.ffn_dim is None:
            self.ffn_dim = 4 * self.dim
        if self.window_size < 1 or self.conv_stride < 1:
            raise ConfigError("window_size and conv_stride must be >= 1")
        if not 0.0 <= self.dropout < 1.0:
            raise ConfigError("dropout must be in [0, 1)")

    @property
    def conv_padding(self) -> int:
        """Symmetric padding keeping ``n = ceil(L / stride)`` windows."""
        return self.window_size // 2

    def n_windows(self, length: int) -> int:
        """Number of window embeddings the front end emits for ``length``."""
        return (length + 2 * self.conv_padding - self.window_size) // self.conv_stride + 1
