"""The RITA model (paper Fig. 1).

Pipeline: raw timeseries ``(B, L, m)`` -> time-aware convolution ->
window embeddings ``(B, n, d)`` -> [CLS] token prepended -> learned
position embeddings -> RITA encoder -> contextual embeddings.

Heads (paper Sec. A.7):
* classification — linear softmax over the [CLS] representation;
* imputation / forecasting — transpose convolution decoding every
  window representation back to timeseries values;
* embedding extraction — the [CLS] representation itself, for similarity
  search and clustering.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.attention.group import GroupAttention
from repro.autograd import ops
from repro.autograd.tensor import Tensor, as_tensor, no_grad
from repro.errors import ConfigError, ShapeError
from repro.kernels.policy import get_default_dtype
from repro.model.config import RitaConfig
from repro.model.encoder import RitaEncoder
from repro.nn import Conv1d, ConvTranspose1d, LearnedPositionalEmbedding, Linear, Module, Parameter, init
from repro.rng import get_rng
from repro.simgpu.memory import MemoryModel

__all__ = ["TimeAwareConvolution", "RitaModel"]


class TimeAwareConvolution(Module):
    """Front end bridging timeseries and "semantic units" (paper Sec. 3).

    ``d`` convolution kernels of width ``w`` slide over the ``(L, m)``
    input; each output position is one *window embedding*, capturing local
    structure across all channels simultaneously (the multi-channel gap
    between NLP and timeseries).
    """

    def __init__(self, config: RitaConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.config = config
        self.conv = Conv1d(
            config.input_channels,
            config.dim,
            kernel_size=config.window_size,
            stride=config.conv_stride,
            padding=config.conv_padding,
            rng=rng,
        )

    def forward(self, series: Tensor) -> Tensor:
        """``(B, L, m)`` -> ``(B, n, d)`` window embeddings."""
        if series.ndim != 3:
            raise ShapeError(f"expected (B, L, m) series, got {series.shape}")
        channels_first = series.transpose((0, 2, 1))
        features = self.conv(channels_first)
        return features.transpose((0, 2, 1))


class RitaModel(Module):
    """RITA: time-aware convolution + Transformer encoder + task heads."""

    def __init__(self, config: RitaConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = get_rng(rng)
        self.config = config
        self.frontend = TimeAwareConvolution(config, rng)
        self.cls_token = Parameter(init.normal((1, 1, config.dim), std=0.02, rng=rng))
        self.positions = LearnedPositionalEmbedding(config.max_len + 1, config.dim, rng=rng)
        self.encoder = RitaEncoder(config, rng)
        if config.n_classes is not None:
            self.classifier = Linear(config.dim, config.n_classes, rng=rng)
        else:
            self.classifier = None
        self.decoder = ConvTranspose1d(
            config.dim,
            config.input_channels,
            kernel_size=config.window_size,
            stride=config.conv_stride,
            padding=config.conv_padding,
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Core encoding
    # ------------------------------------------------------------------
    def encode(self, series) -> tuple[Tensor, Tensor]:
        """Encode raw series; returns ``(cls_embedding, window_embeddings)``.

        ``cls_embedding``: ``(B, d)`` — the series-level representation.
        ``window_embeddings``: ``(B, n, d)`` — per-window representations.

        Incoming series are cast to the policy compute dtype (float32 by
        default) so the whole forward pass runs in one dtype; float64
        datasets do not silently promote a float32 model.
        """
        series = ops.astype(as_tensor(series), get_default_dtype())
        windows = self.frontend(series)  # (B, n, d)
        batch = windows.shape[0]
        cls = ops.broadcast_to(self.cls_token, (batch, 1, self.config.dim))
        stacked = ops.concat([cls, windows], axis=1)
        positioned = self.positions(stacked)
        hidden = self.encoder(positioned)
        return hidden[:, 0, :], hidden[:, 1:, :]

    # ------------------------------------------------------------------
    # Heads (paper A.7)
    # ------------------------------------------------------------------
    def classify(self, series) -> Tensor:
        """Class logits from the [CLS] representation (A.7.1)."""
        if self.classifier is None:
            raise ConfigError("model was built without n_classes; no classifier head")
        cls_embedding, _ = self.encode(series)
        return self.classifier(cls_embedding)

    def reconstruct(self, series) -> Tensor:
        """Decode window embeddings back to a ``(B, L, m)`` series (A.7.2).

        Used for imputation (masked positions) and forecasting (masked
        tail).  The transpose convolution mirrors the front end geometry.
        """
        series = as_tensor(series)
        length = series.shape[1]
        _, windows = self.encode(series)
        channels_first = windows.transpose((0, 2, 1))
        decoded = self.decoder(channels_first).transpose((0, 2, 1))
        if decoded.shape[1] < length:
            raise ShapeError(
                f"decoder produced length {decoded.shape[1]} < input {length}; "
                "check window_size/stride geometry"
            )
        return decoded[:, :length, :]

    # ------------------------------------------------------------------
    # Inference fast paths (no graph construction)
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _inference(self):
        """Eval mode + ``no_grad`` for the duration; restores training mode."""
        was_training = self.training
        if was_training:
            self.eval()
        try:
            with no_grad():
                yield
        finally:
            if was_training:
                self.train()

    def predict_logits(self, series) -> np.ndarray:
        """Class logits on the inference fast path.

        Runs in eval mode (dropout off) under ``no_grad``, so no autograd
        graph is built and the kernel layer skips backward caches
        (layer-norm statistics, relu masks); prediction allocates only
        forward activations.  Training mode is restored afterwards.
        """
        with self._inference():
            return self.classify(series).data

    def predict(self, series) -> np.ndarray:
        """Predicted class ids ``(B,)`` via :meth:`predict_logits`."""
        return self.predict_logits(series).argmax(axis=-1)

    def predict_series(self, series) -> np.ndarray:
        """Reconstructed series on the inference fast path (imputation/forecasting)."""
        with self._inference():
            return self.reconstruct(series).data

    def embed(self, series) -> np.ndarray:
        """Series-level embedding as a NumPy array (A.7.4; no grad)."""
        with self._inference():
            cls_embedding, _ = self.encode(series)
        return cls_embedding.data

    # ------------------------------------------------------------------
    # Introspection used by scheduler / memory accounting
    # ------------------------------------------------------------------
    def group_attention_layers(self) -> list[GroupAttention]:
        """All group-attention mechanisms (empty for baseline models)."""
        return [m for m in self.modules() if isinstance(m, GroupAttention)]

    def mean_groups(self) -> float:
        """Average current ``N`` across group-attention layers."""
        layers = self.group_attention_layers()
        if not layers:
            return 0.0
        return float(np.mean([layer.n_groups for layer in layers]))

    def memory_model(self) -> MemoryModel:
        """Analytic memory model matching this architecture."""
        return MemoryModel(
            dim=self.config.dim,
            n_heads=self.config.n_heads,
            n_layers=self.config.n_layers,
            ffn_dim=self.config.ffn_dim,
        )

    def estimate_step_bytes(self, batch_size: int, length: int) -> int:
        """Estimated simulated-GPU bytes for a training step."""
        kind = self.config.attention
        kwargs: dict = {}
        if kind == "group":
            kwargs["n_groups"] = int(round(self.mean_groups())) or self.config.n_groups
        elif kind == "performer":
            kwargs["feature_dim"] = self.config.performer_features
        elif kind == "linformer":
            kwargs["proj_dim"] = self.config.linformer_proj_dim
        elif kind == "local":
            kwargs["window"] = self.config.local_window
        n = self.config.n_windows(length) + 1  # +1 for [CLS]
        return self.memory_model().step_bytes(kind, batch_size, n, **kwargs)
