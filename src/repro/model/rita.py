"""The RITA model (paper Fig. 1).

Pipeline: raw timeseries ``(B, L, m)`` -> time-aware convolution ->
window embeddings ``(B, n, d)`` -> [CLS] token prepended -> learned
position embeddings -> RITA encoder -> contextual embeddings.

Heads (paper Sec. A.7):
* classification — linear softmax over the [CLS] representation;
* imputation / forecasting — transpose convolution decoding every
  window representation back to timeseries values;
* embedding extraction — the [CLS] representation itself, for similarity
  search and clustering.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.attention.group import GroupAttention
from repro.autograd import ops
from repro.autograd.tensor import Tensor, as_tensor
from repro.errors import ConfigError, ShapeError
from repro.kernels.policy import get_default_dtype
from repro.model.config import RitaConfig
from repro.model.encoder import RitaEncoder
from repro.nn import Conv1d, ConvTranspose1d, LearnedPositionalEmbedding, Linear, Module, Parameter, init
from repro.rng import get_rng
from repro.simgpu.memory import MemoryModel

__all__ = ["TimeAwareConvolution", "RitaModel"]

#: One DeprecationWarning per process for the whole legacy serving surface
#: (predict / predict_logits / predict_series / embed).
_SERVING_DEPRECATION_WARNED = False


class TimeAwareConvolution(Module):
    """Front end bridging timeseries and "semantic units" (paper Sec. 3).

    ``d`` convolution kernels of width ``w`` slide over the ``(L, m)``
    input; each output position is one *window embedding*, capturing local
    structure across all channels simultaneously (the multi-channel gap
    between NLP and timeseries).
    """

    def __init__(self, config: RitaConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.config = config
        self.conv = Conv1d(
            config.input_channels,
            config.dim,
            kernel_size=config.window_size,
            stride=config.conv_stride,
            padding=config.conv_padding,
            rng=rng,
        )

    def forward(self, series: Tensor) -> Tensor:
        """``(B, L, m)`` -> ``(B, n, d)`` window embeddings."""
        if series.ndim != 3:
            raise ShapeError(f"expected (B, L, m) series, got {series.shape}")
        channels_first = series.transpose((0, 2, 1))
        features = self.conv(channels_first)
        return features.transpose((0, 2, 1))


class RitaModel(Module):
    """RITA: time-aware convolution + Transformer encoder + task heads."""

    #: Tasks check this before forwarding a padded batch's validity mask;
    #: mask-unaware baselines (e.g. TST) leave it false and get a clear
    #: error instead of a confusing TypeError on ragged data.
    supports_padding_mask = True

    def __init__(self, config: RitaConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = get_rng(rng)
        self.config = config
        self.frontend = TimeAwareConvolution(config, rng)
        self.cls_token = Parameter(init.normal((1, 1, config.dim), std=0.02, rng=rng))
        self.positions = LearnedPositionalEmbedding(config.max_len + 1, config.dim, rng=rng)
        self.encoder = RitaEncoder(config, rng)
        if config.n_classes is not None:
            self.classifier = Linear(config.dim, config.n_classes, rng=rng)
        else:
            self.classifier = None
        self.decoder = ConvTranspose1d(
            config.dim,
            config.input_channels,
            kernel_size=config.window_size,
            stride=config.conv_stride,
            padding=config.conv_padding,
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Padding-mask plumbing (variable-length batches)
    # ------------------------------------------------------------------
    def window_mask(self, mask: np.ndarray) -> np.ndarray:
        """Window-level validity mask from a series-level one.

        ``mask`` is the boolean ``(B, L)`` validity mask of a left-aligned
        padded batch (true = real timestep; padding must be a contiguous
        tail, which is what :func:`repro.data.pad_ragged` produces).
        Window ``j`` of sequence ``i`` is valid iff the unpadded sequence
        would have produced it — i.e. ``j < n_windows(length_i)`` — so a
        padded forward emits exactly the windows the unpadded forward
        would (zero padding matches the convolution's own zero padding).
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 2:
            raise ShapeError(f"expected (B, L) series mask, got {mask.shape}")
        lengths = mask.sum(axis=1)
        if (lengths == 0).any():
            raise ShapeError("every series in a padded batch needs >= 1 valid timestep")
        prefix = np.arange(mask.shape[1]) < lengths[:, None]
        if not np.array_equal(mask, prefix):
            raise ShapeError(
                "padding mask must be left-aligned (valid prefix, padded tail); "
                "re-pad with repro.data.pad_ragged"
            )
        config = self.config
        n_valid = (
            lengths + 2 * config.conv_padding - config.window_size
        ) // config.conv_stride + 1
        total = config.n_windows(mask.shape[1])
        return np.arange(total) < np.maximum(n_valid, 0)[:, None]

    @staticmethod
    def pool_windows(windows: Tensor, window_mask: np.ndarray | None = None) -> Tensor:
        """Mean-pool ``(B, n, d)`` window embeddings into ``(B, d)``.

        With a window-level validity mask, padded windows are excluded
        from both the sum and the divisor (masked mean pooling), so the
        pooled embedding of a padded series equals its unpadded one.
        """
        if window_mask is None:
            return windows.mean(axis=1)
        window_mask = np.asarray(window_mask, dtype=bool)
        weights = window_mask.astype(windows.dtype)[..., None]
        totals = (windows * weights).sum(axis=1)
        counts = np.maximum(window_mask.sum(axis=1, keepdims=True), 1).astype(windows.dtype)
        return totals / counts

    # ------------------------------------------------------------------
    # Core encoding
    # ------------------------------------------------------------------
    def encode(self, series, mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        """Encode raw series; returns ``(cls_embedding, window_embeddings)``.

        ``cls_embedding``: ``(B, d)`` — the series-level representation.
        ``window_embeddings``: ``(B, n, d)`` — per-window representations.

        Incoming series are cast to the policy compute dtype (float32 by
        default) so the whole forward pass runs in one dtype; float64
        datasets do not silently promote a float32 model.

        ``mask`` is an optional boolean ``(B, L)`` validity mask for
        ragged batches padded to a common length (see
        :func:`repro.data.pad_ragged`).  The derived window mask — with
        the always-valid [CLS] slot prepended — flows through every
        encoder layer, so embeddings at valid positions match running
        each sequence unpadded; window embeddings at padded positions are
        unspecified.
        """
        cls_embedding, windows, _ = self._encode(series, mask)
        return cls_embedding, windows

    def _encode(
        self, series, mask: np.ndarray | None
    ) -> tuple[Tensor, Tensor, np.ndarray | None]:
        """:meth:`encode` plus the derived window mask (``None`` unmasked).

        Internal so masked consumers (``reconstruct``, ``embed``) reuse the
        window mask instead of re-deriving and re-validating it.
        """
        series = ops.astype(as_tensor(series), get_default_dtype())
        if mask is not None:
            # Zero the padded tail so boundary windows (receptive fields
            # straddling the valid end) see exactly the zeros the unpadded
            # forward's convolution padding would supply — valid outputs
            # become independent of whatever the caller padded with.
            series = series * np.asarray(mask, dtype=bool)[:, :, None].astype(series.dtype)
        windows = self.frontend(series)  # (B, n, d)
        batch = windows.shape[0]
        wmask = None
        full_mask = None
        if mask is not None:
            wmask = self.window_mask(mask)
            if wmask.shape[1] != windows.shape[1]:
                raise ShapeError(
                    f"mask length {np.asarray(mask).shape[1]} inconsistent with "
                    f"series length {series.shape[1]}"
                )
            cls_valid = np.ones((batch, 1), dtype=bool)
            full_mask = np.concatenate([cls_valid, wmask], axis=1)
        cls = ops.broadcast_to(self.cls_token, (batch, 1, self.config.dim))
        stacked = ops.concat([cls, windows], axis=1)
        positioned = self.positions(stacked)
        hidden = self.encoder(positioned, mask=full_mask)
        return hidden[:, 0, :], hidden[:, 1:, :], wmask

    # ------------------------------------------------------------------
    # Heads (paper A.7)
    # ------------------------------------------------------------------
    def classify(self, series, mask: np.ndarray | None = None) -> Tensor:
        """Class logits from the [CLS] representation (A.7.1)."""
        if self.classifier is None:
            raise ConfigError("model was built without n_classes; no classifier head")
        cls_embedding, _ = self.encode(series, mask=mask)
        return self.classifier(cls_embedding)

    def reconstruct(self, series, mask: np.ndarray | None = None) -> Tensor:
        """Decode window embeddings back to a ``(B, L, m)`` series (A.7.2).

        Used for imputation (masked positions) and forecasting (masked
        tail).  The transpose convolution mirrors the front end geometry.
        On ragged batches, reconstructed values beyond each sequence's
        valid length are unspecified — losses and metrics must restrict
        themselves to ``mask`` (see ``MaskedMSELoss``).
        """
        series = as_tensor(series)
        length = series.shape[1]
        _, windows, wmask = self._encode(series, mask)
        if wmask is not None:
            # The decoder's receptive field at the last ``conv_padding``
            # valid timesteps straddles windows past the valid range, whose
            # embeddings are unspecified.  Zero them so those timesteps see
            # exactly the absent-window zeros of the unpadded forward —
            # valid reconstructions stay equal to running the sequence
            # unpadded and independent of batchmates' lengths.
            windows = windows * wmask[:, :, None].astype(windows.dtype)
        channels_first = windows.transpose((0, 2, 1))
        decoded = self.decoder(channels_first).transpose((0, 2, 1))
        if decoded.shape[1] < length:
            raise ShapeError(
                f"decoder produced length {decoded.shape[1]} < input {length}; "
                "check window_size/stride geometry"
            )
        return decoded[:, :length, :]

    # ------------------------------------------------------------------
    # Deprecated inference shims (the serving surface moved to
    # repro.serve.InferenceEngine; these stay for output parity)
    # ------------------------------------------------------------------
    def _serving_engine(self, batch_size: int | None):
        """One-shot engine over this live model (deprecated-path plumbing)."""
        global _SERVING_DEPRECATION_WARNED
        if not _SERVING_DEPRECATION_WARNED:
            _SERVING_DEPRECATION_WARNED = True
            warnings.warn(
                "RitaModel.predict/predict_logits/predict_series/embed are "
                "deprecated; serve through repro.serve.InferenceEngine "
                "(engine.predict/classify/reconstruct/embed)",
                DeprecationWarning,
                stacklevel=3,
            )
        from repro.serve.engine import InferenceEngine

        return InferenceEngine(self, max_batch_size=batch_size)

    def predict_logits(
        self, series, mask: np.ndarray | None = None, batch_size: int | None = None
    ) -> np.ndarray:
        """Deprecated: use :meth:`repro.serve.InferenceEngine.classify`."""
        return self._serving_engine(batch_size).classify(series, mask=mask)

    def predict(
        self, series, mask: np.ndarray | None = None, batch_size: int | None = None
    ) -> np.ndarray:
        """Deprecated: use :meth:`repro.serve.InferenceEngine.predict`."""
        return self._serving_engine(batch_size).predict(series, mask=mask)

    def predict_series(
        self, series, mask: np.ndarray | None = None, batch_size: int | None = None
    ) -> np.ndarray:
        """Deprecated: use :meth:`repro.serve.InferenceEngine.reconstruct`."""
        return self._serving_engine(batch_size).reconstruct(series, mask=mask)

    def embed(
        self,
        series,
        mask: np.ndarray | None = None,
        batch_size: int | None = None,
        pooling: str = "cls",
    ) -> np.ndarray:
        """Deprecated: use :meth:`repro.serve.InferenceEngine.embed`."""
        return self._serving_engine(batch_size).embed(series, mask=mask, pooling=pooling)

    # ------------------------------------------------------------------
    # Introspection used by scheduler / memory accounting
    # ------------------------------------------------------------------
    def group_attention_layers(self) -> list[GroupAttention]:
        """All group-attention mechanisms (empty for baseline models)."""
        return [m for m in self.modules() if isinstance(m, GroupAttention)]

    def mean_groups(self) -> float:
        """Average current ``N`` across group-attention layers."""
        layers = self.group_attention_layers()
        if not layers:
            return 0.0
        return float(np.mean([layer.n_groups for layer in layers]))

    def memory_model(self) -> MemoryModel:
        """Analytic memory model matching this architecture."""
        return MemoryModel(
            dim=self.config.dim,
            n_heads=self.config.n_heads,
            n_layers=self.config.n_layers,
            ffn_dim=self.config.ffn_dim,
        )

    def estimate_step_bytes(self, batch_size: int, length: int) -> int:
        """Estimated simulated-GPU bytes for a training step."""
        kind = self.config.attention
        kwargs: dict = {}
        if kind == "group":
            kwargs["n_groups"] = int(round(self.mean_groups())) or self.config.n_groups
        elif kind == "performer":
            kwargs["feature_dim"] = self.config.performer_features
        elif kind == "linformer":
            kwargs["proj_dim"] = self.config.linformer_proj_dim
        elif kind == "local":
            kwargs["window"] = self.config.local_window
        n = self.config.n_windows(length) + 1  # +1 for [CLS]
        return self.memory_model().step_bytes(kind, batch_size, n, **kwargs)
