"""RITA encoder: Transformer encoder with pluggable attention (Sec. 3).

The only difference from the canonical Transformer encoder is the
attention module — group attention replaces self-attention.  The paper's
baselines (Vanilla/Performer/Linformer) swap mechanisms inside the same
architecture, which :func:`build_attention` makes a one-liner.
"""

from __future__ import annotations

import numpy as np

from repro.attention import (
    AttentionMechanism,
    GroupAttention,
    LinformerAttention,
    LocalAttention,
    MultiHeadSelfAttention,
    PerformerAttention,
    VanillaAttention,
)
from repro.autograd.tensor import Tensor
from repro.model.config import RitaConfig
from repro.nn import Dropout, GELU, LayerNorm, Linear, Module, ModuleList, Sequential

__all__ = ["build_attention", "RitaEncoderLayer", "RitaEncoder"]


def build_attention(config: RitaConfig, rng: np.random.Generator | None = None) -> AttentionMechanism:
    """Construct a fresh attention mechanism from the config.

    Each encoder layer gets its own instance so group-attention layers can
    keep independent ``N`` values, as the adaptive scheduler requires.
    """
    if config.attention == "vanilla":
        return VanillaAttention()
    if config.attention == "group":
        return GroupAttention(
            n_groups=config.n_groups, kmeans_iters=config.kmeans_iters, rng=rng,
            recluster_every=config.recluster_every,
            drift_tolerance=config.drift_tolerance,
        )
    if config.attention == "performer":
        return PerformerAttention(n_features=config.performer_features, rng=rng)
    if config.attention == "linformer":
        # +1 accounts for the [CLS] token prepended by the model.
        return LinformerAttention(
            max_len=config.max_len + 1, proj_dim=config.linformer_proj_dim, rng=rng
        )
    return LocalAttention(window=config.local_window)


class RitaEncoderLayer(Module):
    """Post-norm Transformer encoder layer with a pluggable mechanism."""

    def __init__(self, config: RitaConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.attention = MultiHeadSelfAttention(
            config.dim, config.n_heads, build_attention(config, rng), rng=rng
        )
        self.ffn = Sequential(
            Linear(config.dim, config.ffn_dim, rng=rng),
            GELU(),
            Linear(config.ffn_dim, config.dim, rng=rng),
        )
        self.norm_attention = LayerNorm(config.dim)
        self.norm_ffn = LayerNorm(config.dim)
        self.dropout_attention = Dropout(config.dropout)
        self.dropout_ffn = Dropout(config.dropout)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """``mask``: optional ``(B, n)`` validity mask for ragged batches.

        Only attention mixes positions; layer norm, the FFN, and dropout
        are per-position, so masking the attention keys at every layer is
        sufficient for valid positions to match an unpadded forward.
        """
        x = self.norm_attention(x + self.dropout_attention(self.attention(x, mask=mask)))
        x = self.norm_ffn(x + self.dropout_ffn(self.ffn(x)))
        return x


class RitaEncoder(Module):
    """Stack of encoder layers."""

    def __init__(self, config: RitaConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.layers = ModuleList(
            RitaEncoderLayer(config, rng) for _ in range(config.n_layers)
        )

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, mask=mask)
        return x

    def group_attention_layers(self) -> list[GroupAttention]:
        """Every group-attention mechanism in the stack (scheduler input)."""
        return [m for m in self.modules() if isinstance(m, GroupAttention)]
