"""Mergeable-cluster detection (paper Sec. 5.1, Lemma 2).

Finding the maximum number of mergeable clusters is a minimum clique cover
(NP-hard), so the paper uses a halving heuristic: split the clusters into
two sets ``S1`` and ``S2``; a cluster ``j`` in ``S2`` is *marked* when some
``i`` in ``S1`` satisfies

    max_{x in cluster_i} |c_i - c_j| + |x - c_i|  <=  d          (A)
    max_{x in cluster_j} |c_j - c_i| + |x - c_j|  <=  d / 2      (B)

Clusters in ``S1`` act as transfer nodes: condition (B)'s tighter ``d/2``
bound lets several marked ``S2`` clusters merge with one ``S1`` cluster
while keeping the Lemma 2 premise (``|c_ki - c_kj| + |x - c_ki| <= d`` for
every pair) intact, as shown by the triangle-inequality chain of Eq. (6).

The adaptive scheduler only needs the *count* of marked clusters to shrink
``N``; :func:`apply_merges` actually performs the merge (used by tests to
validate Lemma 2 empirically).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "MergePlan",
    "find_mergeable",
    "count_mergeable",
    "apply_merges",
    "merged_max_deviation",
    "build_merge_graph",
    "greedy_clique_cover_size",
]


@dataclass
class MergePlan:
    """Mergeable clusters detected by the halving heuristic.

    Attributes
    ----------
    marked:
        ``(B, N2)`` boolean: which ``S2`` clusters can be absorbed.
    target:
        ``(B, N2)`` int: index *into S1* of the absorbing cluster
        (meaningful only where ``marked``).
    s1_size:
        Number of clusters in the ``S1`` half.
    n_merged:
        ``(B,)`` number of marked clusters per batch element.
    """

    marked: np.ndarray
    target: np.ndarray
    s1_size: int
    n_merged: np.ndarray


def _center_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise center distances ``(B, Na, Nb)`` (Euclidean)."""
    diff_sq = (
        np.einsum("bnd,bnd->bn", a, a, optimize=True)[:, :, None]
        + np.einsum("bmd,bmd->bm", b, b, optimize=True)[:, None, :]
        - 2.0 * (a @ np.swapaxes(b, -1, -2))
    )
    return np.sqrt(np.maximum(diff_sq, 0.0))


def find_mergeable(
    centers: np.ndarray,
    radii: np.ndarray,
    counts: np.ndarray,
    threshold: float,
) -> MergePlan:
    """Detect clusters mergeable under the error-bound distance ``threshold``.

    Parameters
    ----------
    centers:
        ``(B, N, d)`` cluster centers.
    radii:
        ``(B, N)`` max member-to-center distance per cluster.
    counts:
        ``(B, N)`` cluster sizes; empty clusters are always absorbable.
    threshold:
        The distance bound ``d`` obtained from the user's error bound
        ``eps`` via Lemma 1 (``d = ln(eps) / (2R)``).
    """
    if centers.ndim != 3:
        raise ShapeError(f"find_mergeable expects (B, N, d) centers, got {centers.shape}")
    batch, n_clusters, _ = centers.shape
    half = n_clusters // 2
    if half == 0:
        return MergePlan(
            marked=np.zeros((batch, 0), dtype=bool),
            target=np.zeros((batch, 0), dtype=np.int64),
            s1_size=n_clusters,
            n_merged=np.zeros(batch, dtype=np.int64),
        )
    s1_centers, s2_centers = centers[:, :half], centers[:, half:]
    s1_radii, s2_radii = radii[:, :half], radii[:, half:]
    s2_counts = counts[:, half:]

    dist = _center_distances(s1_centers, s2_centers)  # (B, N1, N2)
    cond_a = dist + s1_radii[:, :, None] <= threshold
    cond_b = dist + s2_radii[:, None, :] <= threshold / 2.0
    eligible = cond_a & cond_b  # (B, N1, N2)

    marked = eligible.any(axis=1)
    target = eligible.argmax(axis=1).astype(np.int64)
    # Empty S2 clusters can always be dropped: merging nothing is safe.
    empty = s2_counts == 0
    marked = marked | empty
    n_merged = marked.sum(axis=1).astype(np.int64)
    return MergePlan(marked=marked, target=target, s1_size=half, n_merged=n_merged)


def count_mergeable(
    centers: np.ndarray,
    radii: np.ndarray,
    counts: np.ndarray,
    threshold: float,
) -> np.ndarray:
    """Number of mergeable clusters per batch element (scheduler's ``D``)."""
    return find_mergeable(centers, radii, counts, threshold).n_merged


def apply_merges(assignments: np.ndarray, plan: MergePlan) -> np.ndarray:
    """Rewrite assignments so marked S2 clusters point at their S1 absorber.

    Returns new assignments with the same cluster-id space; marked cluster
    ids simply become unused.  Primarily used by tests that validate the
    Lemma 2 guarantee empirically.
    """
    batch, n = assignments.shape
    new_assignments = assignments.copy()
    for b in range(batch):
        for j in np.nonzero(plan.marked[b])[0]:
            source = plan.s1_size + j
            new_assignments[b][assignments[b] == source] = plan.target[b, j]
    return new_assignments


def build_merge_graph(centers: np.ndarray, radii: np.ndarray, threshold: float):
    """The paper's graph formulation of mergeability (Sec. 5.1).

    Nodes are clusters of **one** batch element (``centers``: ``(N, d)``,
    ``radii``: ``(N,)``); an undirected edge connects ``i`` and ``j`` when

        max_{x in cluster_i} |c_i - c_j| + |x - c_i| <= d   and
        max_{x in cluster_j} |c_j - c_i| + |x - c_j| <= d.

    Finding the maximum number of merges is then a minimum clique cover —
    NP-hard, which motivates the S1/S2 halving heuristic.  This exact
    formulation exists for validation: the heuristic must only ever merge
    along edges of this graph (tested), so it is a safe under-approximation
    of the optimum.
    """
    import networkx as nx

    if centers.ndim != 2:
        raise ShapeError(f"build_merge_graph expects (N, d) centers, got {centers.shape}")
    n_clusters = len(centers)
    graph = nx.Graph()
    graph.add_nodes_from(range(n_clusters))
    dist = _center_distances(centers[None], centers[None])[0]
    for i in range(n_clusters):
        for j in range(i + 1, n_clusters):
            if dist[i, j] + radii[i] <= threshold and dist[i, j] + radii[j] <= threshold:
                graph.add_edge(i, j)
    return graph


def greedy_clique_cover_size(graph) -> int:
    """Upper bound on the minimum clique cover via complement coloring.

    A clique cover of G is a proper coloring of its complement; greedy
    coloring gives an upper bound on the optimum (exact on small/simple
    graphs).  Used by tests to check the S1/S2 heuristic never claims
    more merges than a clique cover permits.
    """
    import networkx as nx

    complement = nx.complement(graph)
    coloring = nx.greedy_color(complement, strategy="largest_first")
    return len(set(coloring.values())) if coloring else 0


def merged_max_deviation(
    points: np.ndarray, assignments: np.ndarray, n_clusters: int
) -> np.ndarray:
    """Max member-to-centroid distance per batch after (re)assignment.

    Recomputes centroids from scratch for the given assignment and returns
    ``(B,)`` with the largest member distance, the quantity bounded by ``d``
    in Lemma 2's conclusion.
    """
    batch, n, dim = points.shape
    sums = np.zeros((batch, n_clusters, dim), dtype=points.dtype)
    counts = np.zeros((batch, n_clusters), dtype=np.int64)
    flat_ids = (assignments + np.arange(batch)[:, None] * n_clusters).reshape(-1)
    np.add.at(sums.reshape(batch * n_clusters, dim), flat_ids, points.reshape(-1, dim))
    np.add.at(counts.reshape(-1), flat_ids, 1)
    centers = sums / np.maximum(counts, 1)[:, :, None]
    member_centers = np.take_along_axis(centers, assignments[:, :, None], axis=1)
    distances = np.linalg.norm(points - member_centers, axis=-1)
    return distances.max(axis=1)
