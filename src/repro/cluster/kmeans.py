"""Batched K-means in the paper's GPU-friendly formulation (Sec. 4.4).

The grouping step of group attention clusters the *key* vectors of every
attention head.  Requirements from the paper:

1. tight distance bound — K-means minimizes point-to-center distance;
2. lightweight — a handful of Lloyd iterations, O(n N) per iteration;
3. GPU friendly — distances via ``|v|^2 + |c|^2 - 2 v . c`` so the inner
   loop is one matrix product, not a pairwise difference.

All routines are *batched*: ``points`` has shape ``(B, n, d)`` and every
batch element is clustered independently but in one vectorized pass, which
is how the real system amortizes the grouping over ``batch x heads``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.rng import get_rng

__all__ = ["KMeansResult", "batched_kmeans", "pairwise_sq_distances", "kmeans_pp_init"]


@dataclass
class KMeansResult:
    """Outcome of one batched K-means run.

    Attributes
    ----------
    assignments:
        ``(B, n)`` int array; cluster id of each point.
    centers:
        ``(B, N, d)`` cluster centroids.  Empty clusters keep their previous
        (or initial) center.
    counts:
        ``(B, N)`` cluster sizes.
    radii:
        ``(B, N)`` max distance from any member to its center (0 for empty
        clusters).  This is the ``max_x |x - c_k|`` quantity of Lemma 2.
    inertia:
        ``(B,)`` sum of squared member-to-center distances.
    """

    assignments: np.ndarray
    centers: np.ndarray
    counts: np.ndarray
    radii: np.ndarray
    inertia: np.ndarray

    @property
    def n_clusters(self) -> int:
        return self.centers.shape[1]


def pairwise_sq_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared distances via ``|v|^2 + |c|^2 - 2 v . c`` (matrix product form).

    ``points``: ``(B, n, d)``; ``centers``: ``(B, N, d)``; returns ``(B, n, N)``.
    This is the formulation of paper Sec. 4.4 — the bottleneck term
    ``v . c`` is a batched matmul rather than a pairwise difference.
    """
    point_sq = np.einsum("bnd,bnd->bn", points, points, optimize=True)[:, :, None]
    center_sq = np.einsum("bkd,bkd->bk", centers, centers, optimize=True)[:, None, :]
    cross = points @ np.swapaxes(centers, -1, -2)
    distances = point_sq + center_sq - 2.0 * cross
    # Round-off can push tiny distances below zero.
    np.maximum(distances, 0.0, out=distances)
    return distances


def kmeans_pp_init(
    points: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """k-means++ seeding, batched over the leading dimension.

    Returns ``(B, N, d)`` initial centers.  Used when no warm-start centers
    are available (first training iteration of each group-attention layer).
    """
    generator = get_rng(rng)
    batch, n, dim = points.shape
    centers = np.empty((batch, n_clusters, dim), dtype=points.dtype)
    first = generator.integers(0, n, size=batch)
    centers[:, 0] = points[np.arange(batch), first]
    closest = None
    for k in range(1, n_clusters):
        newest = centers[:, k - 1][:, None, :]
        dist_new = ((points - newest) ** 2).sum(axis=-1)
        closest = dist_new if closest is None else np.minimum(closest, dist_new)
        total = closest.sum(axis=1, keepdims=True)
        # Guard: all points identical -> sample uniformly.
        probs = np.where(total > 0, closest / np.maximum(total, 1e-30), 1.0 / n)
        cumulative = np.cumsum(probs, axis=1)
        draws = generator.random((batch, 1))
        chosen = (cumulative < draws).sum(axis=1).clip(0, n - 1)
        centers[:, k] = points[np.arange(batch), chosen]
    return centers


def batched_kmeans(
    points: np.ndarray,
    n_clusters: int,
    n_iters: int = 2,
    init_centers: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    init: str = "random",
) -> KMeansResult:
    """Run a few Lloyd iterations of K-means on each batch element.

    Parameters
    ----------
    points:
        ``(B, n, d)`` array to cluster (typically key vectors per head).
    n_clusters:
        Number of groups ``N``; clipped to ``n``.
    n_iters:
        Lloyd iterations.  The paper observes a few iterations suffice
        because group attention is robust to imperfect clusterings.
    init_centers:
        Warm-start centers ``(B, N, d)``; overrides ``init``.  Warm starts
        come from the previous training step of the same layer.
    init:
        ``"random"`` (sample N distinct points) or ``"++"`` (k-means++).

    Notes
    -----
    Empty clusters keep their previous centers; their radius is 0 and count
    is 0, so they never violate merge conditions and simply waste capacity
    until the adaptive scheduler shrinks ``N``.
    """
    if points.ndim != 3:
        raise ShapeError(f"batched_kmeans expects (B, n, d) points, got {points.shape}")
    generator = get_rng(rng)
    batch, n, dim = points.shape
    n_clusters = int(min(n_clusters, n))
    if n_clusters < 1:
        raise ShapeError("n_clusters must be >= 1")

    if init_centers is not None:
        if init_centers.shape != (batch, n_clusters, dim):
            raise ShapeError(
                f"init_centers shape {init_centers.shape} != {(batch, n_clusters, dim)}"
            )
        centers = init_centers.astype(points.dtype, copy=True)
    elif init == "++":
        centers = kmeans_pp_init(points, n_clusters, rng=generator)
    else:
        # Sample N distinct indices per batch element in one pass.
        choice = np.argsort(generator.random((batch, n)), axis=1)[:, :n_clusters]
        centers = np.take_along_axis(points, choice[:, :, None], axis=1).copy()

    assignments = np.zeros((batch, n), dtype=np.int64)
    batch_index = np.arange(batch)[:, None]
    for _ in range(max(n_iters, 1)):
        distances = pairwise_sq_distances(points, centers)
        assignments = distances.argmin(axis=-1)
        # Recompute centers with a batched scatter-add.
        sums = np.zeros((batch, n_clusters, dim), dtype=points.dtype)
        flat_ids = (assignments + np.arange(batch)[:, None] * n_clusters).reshape(-1)
        np.add.at(
            sums.reshape(batch * n_clusters, dim), flat_ids, points.reshape(-1, dim)
        )
        counts = np.zeros((batch, n_clusters), dtype=np.int64)
        np.add.at(counts.reshape(-1), flat_ids, 1)
        nonempty = counts > 0
        centers = np.where(
            nonempty[:, :, None], sums / np.maximum(counts, 1)[:, :, None], centers
        )

    distances = pairwise_sq_distances(points, centers)
    assignments = distances.argmin(axis=-1)
    member_sq = distances[batch_index, np.arange(n)[None, :], assignments]

    counts = np.zeros((batch, n_clusters), dtype=np.int64)
    flat_ids = (assignments + np.arange(batch)[:, None] * n_clusters).reshape(-1)
    np.add.at(counts.reshape(-1), flat_ids, 1)

    radii_sq = np.zeros((batch, n_clusters), dtype=points.dtype)
    np.maximum.at(radii_sq.reshape(-1), flat_ids, member_sq.reshape(-1))

    inertia = member_sq.sum(axis=1)
    return KMeansResult(
        assignments=assignments,
        centers=centers,
        counts=counts,
        radii=np.sqrt(radii_sq),
        inertia=inertia,
    )
