"""Batched K-means in the paper's GPU-friendly formulation (Sec. 4.4).

The grouping step of group attention clusters the *key* vectors of every
attention head.  Requirements from the paper:

1. tight distance bound — K-means minimizes point-to-center distance;
2. lightweight — a handful of Lloyd iterations, O(n N) per iteration;
3. GPU friendly — distances via ``|v|^2 + |c|^2 - 2 v . c`` so the inner
   loop is one matrix product, not a pairwise difference.

All routines are *batched*: ``points`` has shape ``(B, n, d)`` and every
batch element is clustered independently but in one vectorized pass, which
is how the real system amortizes the grouping over ``batch x heads``.

The Lloyd inner loop runs on the active :mod:`repro.kernels` backend —
``kmeans_assign`` (fused distance+argmin with a reused ``(B, n, N)``
scratch buffer), ``segment_mean`` (sort+``reduceat`` center update),
``segment_count`` and ``segment_max`` — so the grouping step shares the
registry, the scratch pools, and the reference/fused parity contract with
the rest of the compute stack.  ``with use_backend("reference")`` oracles
the fused path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.kernels.backend import get_backend
from repro.rng import get_rng

__all__ = ["KMeansResult", "batched_kmeans", "pairwise_sq_distances", "kmeans_pp_init"]


@dataclass
class KMeansResult:
    """Outcome of one batched K-means run.

    Attributes
    ----------
    assignments:
        ``(B, n)`` int array; cluster id of each point.  When the run was
        masked, invalid (padded) points carry the sentinel id ``N`` — one
        past the last real cluster — so scatter consumers can route them
        to a discard segment.
    centers:
        ``(B, N, d)`` cluster centroids.  Empty clusters keep their previous
        (or initial) center.  Masked runs compute centroids from valid
        members only; padded points never contribute.
    counts:
        ``(B, N)`` cluster sizes (valid members only on masked runs).
    radii:
        ``(B, N)`` max distance from any member to its center (0 for empty
        clusters).  This is the ``max_x |x - c_k|`` quantity of Lemma 2.
    inertia:
        ``(B,)`` sum of squared member-to-center distances.
    """

    assignments: np.ndarray
    centers: np.ndarray
    counts: np.ndarray
    radii: np.ndarray
    inertia: np.ndarray

    @property
    def n_clusters(self) -> int:
        return self.centers.shape[1]


def pairwise_sq_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared distances via ``|v|^2 + |c|^2 - 2 v . c`` (matrix product form).

    ``points``: ``(B, n, d)``; ``centers``: ``(B, N, d)``; returns ``(B, n, N)``.
    This is the formulation of paper Sec. 4.4 — the bottleneck term
    ``v . c`` is a batched matmul rather than a pairwise difference.
    """
    point_sq = np.einsum("bnd,bnd->bn", points, points, optimize=True)[:, :, None]
    center_sq = np.einsum("bkd,bkd->bk", centers, centers, optimize=True)[:, None, :]
    cross = points @ np.swapaxes(centers, -1, -2)
    distances = point_sq + center_sq - 2.0 * cross
    # Round-off can push tiny distances below zero.
    np.maximum(distances, 0.0, out=distances)
    return distances


def kmeans_pp_init(
    points: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator | None = None,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """k-means++ seeding, batched over the leading dimension.

    Returns ``(B, N, d)`` initial centers.  Used when no warm-start centers
    are available (first training iteration of each group-attention layer).
    With a boolean ``(B, n)`` ``mask`` (true = valid), invalid points get
    zero sampling weight, so padded keys are never chosen as seeds; a batch
    element with fewer valid points than clusters repeats valid seeds.
    """
    generator = get_rng(rng)
    batch, n, dim = points.shape
    rows = np.arange(batch)
    # |v|^2 computed once; each round's distance update is then a single
    # batched matvec (|v|^2 + |c|^2 - 2 v . c) instead of materializing a
    # (B, n, d) difference tensor per new center.
    points_sq = np.einsum("bnd,bnd->bn", points, points, optimize=True)
    centers = np.empty((batch, n_clusters, dim), dtype=points.dtype)
    if mask is None:
        first = generator.integers(0, n, size=batch)
    else:
        # Uniform draw among valid points: random keys, invalid set below
        # every valid key.  Draw count is mask-independent, keeping the
        # generator stream aligned across ragged batches of one shape.
        keys = generator.random((batch, n))
        first = np.where(mask, keys, -1.0).argmax(axis=1)
    centers[:, 0] = points[rows, first]
    closest = None
    for k in range(1, n_clusters):
        newest = centers[:, k - 1]
        cross = np.einsum("bnd,bd->bn", points, newest, optimize=True)
        newest_sq = np.einsum("bd,bd->b", newest, newest, optimize=True)
        dist_new = points_sq + newest_sq[:, None] - 2.0 * cross
        np.maximum(dist_new, 0.0, out=dist_new)
        if closest is None:
            closest = dist_new
            if mask is not None:
                closest *= mask
        else:
            np.minimum(closest, dist_new, out=closest)
            if mask is not None:
                closest *= mask
        total = closest.sum(axis=1, keepdims=True)
        # Guard: all (valid) points identical -> sample uniformly, but
        # never over padded positions — a padded seed would smuggle padded
        # values into the centroids.
        if mask is None:
            fallback = 1.0 / n
        else:
            fallback = mask / np.maximum(mask.sum(axis=1, keepdims=True), 1)
        probs = np.where(total > 0, closest / np.maximum(total, 1e-30), fallback)
        cumulative = np.cumsum(probs, axis=1)
        draws = generator.random((batch, 1))
        chosen = (cumulative < draws).sum(axis=1).clip(0, n - 1)
        if mask is not None:
            # Round-off in the cumulative sum can land a draw on a
            # zero-probability (padded) index; snap back to a valid seed.
            chosen = np.where(mask[rows, chosen], chosen, first)
        centers[:, k] = points[rows, chosen]
    return centers


def batched_kmeans(
    points: np.ndarray,
    n_clusters: int,
    n_iters: int = 2,
    init_centers: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    init: str = "random",
    mask: np.ndarray | None = None,
) -> KMeansResult:
    """Run a few Lloyd iterations of K-means on each batch element.

    Parameters
    ----------
    points:
        ``(B, n, d)`` array to cluster (typically key vectors per head).
    n_clusters:
        Number of groups ``N``; clipped to ``n``.
    n_iters:
        Lloyd iterations.  The paper observes a few iterations suffice
        because group attention is robust to imperfect clusterings.
    init_centers:
        Warm-start centers ``(B, N, d)``; overrides ``init``.  Warm starts
        come from the previous training step of the same layer.
    init:
        ``"random"`` (sample N distinct points) or ``"++"`` (k-means++).
    mask:
        Optional boolean ``(B, n)`` validity mask (true = valid point).
        Invalid (padded) points are excluded from seeding, center updates,
        counts, radii, and inertia — they are routed to a discard segment
        ``N`` during the scatter reductions, so centroids are bitwise free
        of padded-point contributions.  Their ``assignments`` entries carry
        the sentinel id ``N``.

    Notes
    -----
    Empty clusters keep their previous centers; their radius is 0 and count
    is 0, so they never violate merge conditions and simply waste capacity
    until the adaptive scheduler shrinks ``N``.

    The inner loop runs entirely on the active kernel backend:
    ``kmeans_assign`` for the fused distance+argmin and ``segment_mean`` /
    ``segment_count`` / ``segment_max`` for the scatter reductions that
    used to be ``np.add.at`` / ``np.maximum.at`` scalar loops.
    """
    if points.ndim != 3:
        raise ShapeError(f"batched_kmeans expects (B, n, d) points, got {points.shape}")
    generator = get_rng(rng)
    batch, n, dim = points.shape
    n_clusters = int(min(n_clusters, n))
    if n_clusters < 1:
        raise ShapeError("n_clusters must be >= 1")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (batch, n):
            raise ShapeError(f"mask shape {mask.shape} != {(batch, n)}")
    backend = get_backend()

    if init_centers is not None:
        if init_centers.shape != (batch, n_clusters, dim):
            raise ShapeError(
                f"init_centers shape {init_centers.shape} != {(batch, n_clusters, dim)}"
            )
        centers = init_centers.astype(points.dtype, copy=True)
    elif init == "++":
        centers = kmeans_pp_init(points, n_clusters, rng=generator, mask=mask)
    else:
        # Sample N distinct indices per batch element in one pass.  With a
        # mask, invalid points sort last, so valid points fill the seed
        # slots first.  A batch element with fewer valid points than
        # clusters re-seeds the excess slots from its first valid point
        # instead of from padding — duplicate seeds leave those clusters
        # empty (count 0, radius 0) but keep the returned centers free of
        # padded values, which matters because warm starts feed these
        # centers into future batches.
        keys = generator.random((batch, n))
        if mask is not None:
            keys = np.where(mask, keys, 2.0)
        choice = np.argsort(keys, axis=1)[:, :n_clusters]
        if mask is not None:
            chosen_valid = np.take_along_axis(mask, choice, axis=1)
            choice = np.where(chosen_valid, choice, choice[:, :1])
        centers = np.take_along_axis(points, choice[:, :, None], axis=1).copy()

    # Masked runs scatter into N + 1 segments; segment N is the discard
    # bucket for padded points and is sliced off every reduction.
    sentinel = n_clusters
    n_segments = n_clusters + 1 if mask is not None else n_clusters

    # |v|^2 is constant across Lloyd iterations — compute it once and let
    # the backend skip it inside the argmin entirely.
    points_sq = np.einsum("bnd,bnd->bn", points, points, optimize=True)
    for _ in range(max(n_iters, 1)):
        assignments, _ = backend.kmeans_assign(points, centers, points_sq)
        if mask is not None:
            assignments = np.where(mask, assignments, sentinel)
        means, counts = backend.segment_mean(points, assignments, n_segments)
        means, counts = means[:, :n_clusters], counts[:, :n_clusters]
        centers = np.where((counts > 0)[:, :, None], means, centers)

    assignments, member_sq = backend.kmeans_assign(points, centers, points_sq)
    if mask is not None:
        assignments = np.where(mask, assignments, sentinel)
        member_sq = member_sq * mask
    counts = backend.segment_count(assignments, n_segments)[:, :n_clusters]
    radii_sq = backend.segment_max(member_sq, assignments, n_segments, initial=0.0)
    radii_sq = radii_sq[:, :n_clusters]

    inertia = member_sq.sum(axis=1)
    return KMeansResult(
        assignments=assignments,
        centers=centers,
        counts=counts,
        radii=np.sqrt(radii_sq),
        inertia=inertia,
    )
