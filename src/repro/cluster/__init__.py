"""Clustering substrate: batched K-means and Lemma-2 cluster merging."""

from repro.cluster.kmeans import (
    KMeansResult,
    batched_kmeans,
    kmeans_pp_init,
    pairwise_sq_distances,
)
from repro.cluster.merge import (
    MergePlan,
    apply_merges,
    build_merge_graph,
    count_mergeable,
    find_mergeable,
    greedy_clique_cover_size,
    merged_max_deviation,
)

__all__ = [
    "KMeansResult",
    "batched_kmeans",
    "kmeans_pp_init",
    "pairwise_sq_distances",
    "MergePlan",
    "apply_merges",
    "build_merge_graph",
    "count_mergeable",
    "find_mergeable",
    "greedy_clique_cover_size",
    "merged_max_deviation",
]
