"""Self-healing training: run the Trainer under a supervising parent.

Hours-long pretraining (the paper's Table 3/5 workloads) dies for dull
reasons — OOM kills, preemption, a wedged data loader, a NaN loss — and
an unsupervised run turns any of them into lost wall-clock and a
hand-run resume.  This module closes the loop: training executes in a
**subprocess** that checkpoints durably every epoch
(:class:`~repro.train.checkpoint.CheckpointManager`: atomic +
digest-stamped + ``.bak``-rotated + pruned) and sends heartbeats; the
parent :class:`Supervisor` watches for

* **crashes** — the child exits (SIGKILL, OOM, unhandled exception, a
  :class:`~repro.faultfs.SimulatedCrash` mid-save);
* **hangs** — no heartbeat within ``heartbeat_timeout``; the child is
  killed;
* **divergence** — the trainer's NaN/inf guard raises
  :class:`~repro.errors.DivergenceError`; the poisoned epoch is never
  checkpointed;

and recovers by respawning the child with capped exponential backoff.
Each incarnation rolls back to the **newest checkpoint that passes
verification** (corrupt files are skipped, ``.bak`` rotations consulted)
and replays from there.  Because the training recipe is deterministic
(explicit seeds, unshuffled loader, full optimizer/scheduler state in
the checkpoint — the PR 3 bitwise-resume guarantee), the recovered run's
final weights are **bitwise-identical** to an uninterrupted run's, which
is exactly what ``tests/train/test_supervisor.py`` asserts under a
crash matrix.

Recovery is bounded: past ``max_restarts`` the supervisor raises
:class:`~repro.errors.SupervisorError` (or
:class:`~repro.errors.DivergenceError` when the run diverges
deterministically) — it never loops forever and never returns a
partially trained model as finished.  The supervisor itself is also
crash-safe: all progress lives in the checkpoint directory, so rerunning
a killed supervisor resumes instead of restarting.

The child rebuilds its whole world from a picklable ``factory`` (a
module-level callable), so ``spawn`` and ``fork`` start methods behave
identically; the parent's kernel dtype policy is captured and re-applied
in the child so both start methods produce the same bits.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pathlib
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.errors import ConfigError, DivergenceError, SupervisorError
from repro.faultfs import FaultSchedule, fault_scope
from repro.train.checkpoint import CheckpointManager

__all__ = ["Supervisor", "SupervisedRun", "TrainingRecipe", "TrainPlan"]


@dataclass
class TrainingRecipe:
    """Everything one training incarnation needs, built fresh per process.

    Returned by the supervisor's ``factory``.  The factory must be
    deterministic — same arguments, same initial weights and data — or
    rollback-and-replay cannot reproduce the uninterrupted trajectory.
    ``scheduler`` is optional; when present it is stepped once per epoch
    and its state rides the checkpoint.
    """

    model: Any
    task: Any
    optimizer: Any
    dataset: Any
    scheduler: Any = None
    batch_size: int = 32


@dataclass(frozen=True)
class TrainPlan:
    """A picklable fault plan for supervisor tests — production runs use none.

    All keys are **generation** numbers (0 = first child, +1 per
    respawn), mirroring :class:`~repro.serve.chaos.ChaosSchedule`'s
    incarnation keying: a respawned child starts clean unless the plan
    says otherwise, which is what lets kill schedules test recovery
    instead of flapping forever.

    Parameters
    ----------
    kill_after_epoch:
        ``{generation: (epoch, phase)}`` — that incarnation SIGKILLs
        itself after training epoch ``epoch`` (0-based), either
        ``"before_save"`` (the epoch's checkpoint is lost; recovery
        replays it) or ``"after_save"`` (checkpoint durable; recovery
        resumes past it).
    hang_after_epoch:
        ``{generation: epoch}`` — that incarnation stops heartbeating
        and wedges after the epoch's save; the parent must detect the
        silence and kill it.
    diverge_at_epoch:
        ``{generation: epoch}`` — that incarnation raises
        :class:`~repro.errors.DivergenceError` for epoch ``epoch``
        *instead of* training it (the real guard lives in
        ``Trainer.train_epoch``; this injects the same signal
        deterministically).
    fault_schedules:
        ``{generation: FaultSchedule}`` — filesystem faults installed
        for that incarnation's whole lifetime via
        :func:`repro.faultfs.fault_scope`; a torn write or
        crash-at-rename during a checkpoint save kills the child
        mid-save, which is the crash the atomic-write protocol exists
        to survive.
    """

    kill_after_epoch: Mapping[int, tuple[int, str]] = field(default_factory=dict)
    hang_after_epoch: Mapping[int, int] = field(default_factory=dict)
    diverge_at_epoch: Mapping[int, int] = field(default_factory=dict)
    fault_schedules: Mapping[int, FaultSchedule] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for generation, planned in self.kill_after_epoch.items():
            epoch, phase = planned
            if phase not in ("before_save", "after_save"):
                raise ConfigError(
                    f"kill_after_epoch[{generation}] phase must be 'before_save' "
                    f"or 'after_save', got {phase!r}"
                )
            if epoch < 0:
                raise ConfigError(f"kill_after_epoch[{generation}] epoch must be >= 0")


@dataclass
class SupervisedRun:
    """Outcome of a completed supervised run."""

    #: Path of the final epoch's verified checkpoint.
    final_checkpoint: pathlib.Path | None
    #: Total epochs trained (across all incarnations, counted once).
    epochs: int
    #: Child incarnations that failed and were replaced.
    restarts: int
    #: One record per failure: ``{"generation", "reason", "detail"}``.
    events: list[dict] = field(default_factory=list)
    #: Mean loss of the final epoch, as reported by the child.
    final_loss: float | None = None


@dataclass(frozen=True)
class _Spec:
    """Everything the child needs, shipped picklable across the spawn."""

    factory: Callable[..., TrainingRecipe]
    factory_kwargs: dict
    epochs: int
    checkpoint_dir: str
    prefix: str
    keep_last: int
    heartbeat_interval: float
    dtype_name: str
    plan: TrainPlan


def _child_main(conn, spec: _Spec, generation: int) -> None:
    """Child-process entry point: restore, train, checkpoint, heartbeat."""
    import repro.kernels

    repro.kernels.set_default_dtype(np.dtype(spec.dtype_name))

    send_lock = threading.Lock()
    stop_heartbeat = threading.Event()

    def _send(message: dict) -> None:
        with send_lock:
            conn.send(message)

    def _heartbeat() -> None:
        while not stop_heartbeat.wait(spec.heartbeat_interval):
            try:
                _send({"type": "hb"})
            except OSError:  # parent gone; nothing left to report to
                return

    beater = threading.Thread(target=_heartbeat, name="supervisor-heartbeat", daemon=True)
    beater.start()
    try:
        schedule = spec.plan.fault_schedules.get(generation)
        if schedule is not None:
            with fault_scope(schedule):
                _train_incarnation(_send, stop_heartbeat, spec, generation)
        else:
            _train_incarnation(_send, stop_heartbeat, spec, generation)
    except DivergenceError as exc:
        stop_heartbeat.set()
        _send({"type": "diverged", "detail": str(exc)})
    finally:
        stop_heartbeat.set()
        conn.close()


def _train_incarnation(send, stop_heartbeat, spec: _Spec, generation: int) -> None:
    """One incarnation's training loop: resume → epochs → done message."""
    from repro.data.dataloader import DataLoader
    from repro.train.trainer import Trainer

    recipe = spec.factory(**spec.factory_kwargs)
    if not isinstance(recipe, TrainingRecipe):
        raise ConfigError(
            f"supervisor factory must return a TrainingRecipe, "
            f"got {type(recipe).__name__}"
        )
    manager = CheckpointManager(
        spec.checkpoint_dir, prefix=spec.prefix, keep_last=spec.keep_last
    )
    metadata = manager.load_latest(
        recipe.model,
        optimizer=recipe.optimizer,
        scheduler=recipe.scheduler,
    )
    epochs_done = int(metadata.get("epochs_done", 0)) if metadata else 0
    send({"type": "resumed", "generation": generation, "epochs_done": epochs_done})

    trainer = Trainer(recipe.model, recipe.task, recipe.optimizer)
    final_loss: float | None = None
    for epoch in range(epochs_done, spec.epochs):
        if spec.plan.diverge_at_epoch.get(generation) == epoch:
            raise DivergenceError(
                f"injected divergence at epoch {epoch} (generation {generation})"
            )
        loader = DataLoader(recipe.dataset, batch_size=recipe.batch_size, shuffle=False)
        mean_loss, *_ = trainer.train_epoch(loader)
        if recipe.scheduler is not None:
            recipe.scheduler.step()
        final_loss = float(mean_loss)

        kill = spec.plan.kill_after_epoch.get(generation)
        if kill is not None and kill[0] == epoch and kill[1] == "before_save":
            os.kill(os.getpid(), signal.SIGKILL)
        manager.save(
            recipe.model,
            step=epoch + 1,
            metadata={"epochs_done": epoch + 1, "loss": final_loss},
            optimizer=recipe.optimizer,
            scheduler=recipe.scheduler,
        )
        if kill is not None and kill[0] == epoch and kill[1] == "after_save":
            os.kill(os.getpid(), signal.SIGKILL)
        if spec.plan.hang_after_epoch.get(generation) == epoch:
            stop_heartbeat.set()  # go silent; the parent must notice
            time.sleep(3600.0)
        send({"type": "epoch", "epoch": epoch + 1, "loss": final_loss})
    final = manager.latest_verified() if spec.epochs > 0 else None
    send(
        {
            "type": "done",
            "epochs": spec.epochs,
            "final": None if final is None else str(final),
            "loss": final_loss,
        }
    )


class Supervisor:
    """Run a deterministic training recipe to completion, surviving failures.

    Parameters
    ----------
    factory:
        Module-level callable returning a :class:`TrainingRecipe`; called
        once per child incarnation with ``factory_kwargs``.  Must be
        picklable (``spawn``-safe) and deterministic.
    epochs:
        Total epochs to train.  Progress is tracked in checkpoint
        metadata, so incarnations (and supervisor reruns) resume rather
        than restart.
    checkpoint_dir:
        Directory for the :class:`CheckpointManager` series.
    keep_last:
        Checkpoints retained after pruning (each with a ``.bak``).
    heartbeat_timeout:
        Seconds of child silence before it is declared hung and killed.
    max_restarts:
        Failed incarnations tolerated before giving up with
        :class:`~repro.errors.SupervisorError` /
        :class:`~repro.errors.DivergenceError`.
    backoff_base, backoff_cap:
        Capped exponential delay between respawns:
        ``min(backoff_base * 2**(restarts-1), backoff_cap)``.
    start_method:
        ``multiprocessing`` start method; default ``fork`` where
        available (fast, test-friendly) else ``spawn``.  The recipe is
        rebuilt from the factory either way, so both behave identically.
    plan:
        Optional :class:`TrainPlan` fault injection (tests only).
    """

    def __init__(
        self,
        factory: Callable[..., TrainingRecipe],
        *,
        epochs: int,
        checkpoint_dir,
        factory_kwargs: dict | None = None,
        prefix: str = "ckpt",
        keep_last: int = 3,
        heartbeat_timeout: float = 30.0,
        heartbeat_interval: float | None = None,
        max_restarts: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        start_method: str | None = None,
        plan: TrainPlan | None = None,
    ) -> None:
        if epochs < 0:
            raise ConfigError(f"epochs must be >= 0, got {epochs}")
        if heartbeat_timeout <= 0:
            raise ConfigError(f"heartbeat_timeout must be > 0, got {heartbeat_timeout}")
        if max_restarts < 0:
            raise ConfigError(f"max_restarts must be >= 0, got {max_restarts}")
        if backoff_base < 0 or backoff_cap < backoff_base:
            raise ConfigError(
                f"need 0 <= backoff_base <= backoff_cap, "
                f"got {backoff_base} / {backoff_cap}"
            )
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.max_restarts = int(max_restarts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._ctx = mp.get_context(start_method)
        import repro.kernels

        self._spec = _Spec(
            factory=factory,
            factory_kwargs=dict(factory_kwargs or {}),
            epochs=int(epochs),
            checkpoint_dir=str(checkpoint_dir),
            prefix=prefix,
            keep_last=int(keep_last),
            heartbeat_interval=(
                float(heartbeat_interval)
                if heartbeat_interval is not None
                else max(self.heartbeat_timeout / 4.0, 0.01)
            ),
            dtype_name=np.dtype(repro.kernels.get_default_dtype()).name,
            plan=plan if plan is not None else TrainPlan(),
        )

    # ------------------------------------------------------------------
    def run(self) -> SupervisedRun:
        """Train to completion; raises only after the retry budget is spent."""
        restarts = 0
        generation = 0
        events: list[dict] = []
        while True:
            outcome, detail, payload = self._run_generation(generation)
            if outcome == "done":
                final = payload.get("final")
                return SupervisedRun(
                    final_checkpoint=None if final is None else pathlib.Path(final),
                    epochs=int(payload.get("epochs", 0)),
                    restarts=restarts,
                    events=events,
                    final_loss=payload.get("loss"),
                )
            events.append({"generation": generation, "reason": outcome, "detail": detail})
            restarts += 1
            if restarts > self.max_restarts:
                summary = "; ".join(
                    f"gen {event['generation']}: {event['reason']} ({event['detail']})"
                    for event in events
                )
                if outcome == "diverged":
                    raise DivergenceError(
                        f"training diverged on every retry "
                        f"({restarts} failures > max_restarts={self.max_restarts}): "
                        f"{summary}"
                    )
                raise SupervisorError(
                    f"supervised training failed {restarts} times "
                    f"(max_restarts={self.max_restarts}): {summary}"
                )
            time.sleep(min(self.backoff_base * 2 ** (restarts - 1), self.backoff_cap))
            generation += 1

    # ------------------------------------------------------------------
    def _run_generation(self, generation: int) -> tuple[str, str, dict]:
        """Spawn one child and watch it to completion or failure.

        Returns ``(outcome, detail, payload)`` with outcome one of
        ``"done"`` / ``"crashed"`` / ``"hung"`` / ``"diverged"``.
        """
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_child_main,
            args=(child_conn, self._spec, generation),
            name=f"train-supervisor-gen{generation}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            while True:
                if not parent_conn.poll(self.heartbeat_timeout):
                    self._kill(process)
                    return (
                        "hung",
                        f"no heartbeat within {self.heartbeat_timeout}s",
                        {},
                    )
                try:
                    message = parent_conn.recv()
                except (EOFError, OSError):
                    process.join()
                    return (
                        "crashed",
                        f"child exited with code {process.exitcode}",
                        {},
                    )
                kind = message.get("type")
                if kind == "done":
                    process.join(timeout=self.heartbeat_timeout)
                    if process.is_alive():  # pragma: no cover - defensive
                        self._kill(process)
                    return ("done", "", message)
                if kind == "diverged":
                    process.join(timeout=self.heartbeat_timeout)
                    if process.is_alive():  # pragma: no cover - defensive
                        self._kill(process)
                    return ("diverged", message.get("detail", ""), {})
                # "hb" / "resumed" / "epoch" messages are liveness.
        finally:
            parent_conn.close()

    @staticmethod
    def _kill(process) -> None:
        process.kill()
        process.join()
