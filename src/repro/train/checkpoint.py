"""Model + training-state checkpointing.

Serializes a module's ``state_dict`` (plus arbitrary JSON-compatible
metadata) to a single ``.npz`` file.  Used to hand pretrained encoders to
finetuning runs and to resume interrupted training.  The frozen
*inference* bundle — config + weights + dtype, loadable without the
training stack — is :class:`repro.serve.ModelArtifact`, which shares this
file format's core via :mod:`repro.serialize`.

Resuming *correctly* needs more than weights: Adam's first/second moments,
its bias-correction step count, and the scheduler epoch all shape the next
update.  Pass ``optimizer=`` / ``scheduler=`` to both
:func:`save_checkpoint` and :func:`load_checkpoint` and a resumed run
reproduces the uninterrupted run exactly (tested in
``tests/train/test_resume.py``); omitting them restores weights only, as
before.

Checkpoints carry a format version.  :func:`load_checkpoint` raises
:class:`~repro.errors.ConfigError` — never ``KeyError`` or silent
garbage — on a version newer than this build, corrupt JSON payloads,
missing/unexpected parameters, or shape mismatches.  Unversioned files
from older builds still load (version 0).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Module
from repro.serialize import (
    check_format_version,
    decode_json,
    encode_json,
    open_archive,
    read_format_version,
    saved_npz_path,
)

__all__ = ["save_checkpoint", "load_checkpoint", "CHECKPOINT_FORMAT_VERSION"]

#: Bump when the on-disk layout changes incompatibly.  Version 1 added the
#: explicit version key; version-0 files (pre-versioning) still load.
CHECKPOINT_FORMAT_VERSION = 1

_METADATA_KEY = "__checkpoint_metadata__"
#: JSON blob holding optimizer scalars and the scheduler state.
_TRAIN_STATE_KEY = "__train_state__"
#: Integer format version of the bundle.
_VERSION_KEY = "__checkpoint_format__"
#: Prefix for optimizer accumulator arrays: ``__optim__/<param_idx>/<name>``.
_OPTIM_PREFIX = "__optim__/"
_RESERVED = (_METADATA_KEY, _TRAIN_STATE_KEY, _VERSION_KEY, _OPTIM_PREFIX)


def save_checkpoint(
    model: Module,
    path,
    metadata: dict | None = None,
    optimizer=None,
    scheduler=None,
):
    """Write the model's parameters (and optional training state) to ``path``.

    Returns the path actually written (``.npz`` appended when missing).

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.Module`.
    path:
        Target file; ``.npz`` is appended by NumPy when missing — ship
        the returned path.
    metadata:
        JSON-serializable dict stored alongside the weights (e.g. epoch,
        config fields, metrics).
    optimizer:
        Optional :class:`~repro.optim.Optimizer`; its full state (lr,
        step count, per-parameter moments) is persisted so a resumed run
        continues the same trajectory instead of silently resetting Adam.
    scheduler:
        Optional :class:`~repro.optim.lr_scheduler.LRScheduler`; persists
        the schedule epoch so resumed warmup/decay picks up where it left
        off.
    """
    state = model.state_dict()
    for name in state:
        if name.startswith(_RESERVED):
            raise ConfigError(f"parameter name {name!r} collides with a reserved key")
    payload = dict(state)
    payload[_METADATA_KEY] = encode_json(metadata or {})
    payload[_VERSION_KEY] = np.asarray(CHECKPOINT_FORMAT_VERSION, dtype=np.int64)
    train_state: dict = {}
    if optimizer is not None:
        optim_state = optimizer.state_dict()
        for index, arrays in optim_state.pop("state").items():
            for name, value in arrays.items():
                payload[f"{_OPTIM_PREFIX}{index}/{name}"] = value
        train_state["optimizer"] = optim_state  # scalars only
    if scheduler is not None:
        train_state["scheduler"] = scheduler.state_dict()
    if train_state:
        payload[_TRAIN_STATE_KEY] = encode_json(train_state)
    target = saved_npz_path(path)
    np.savez(target, **payload)
    return target


def load_checkpoint(model: Module, path, optimizer=None, scheduler=None) -> dict:
    """Load parameters saved by :func:`save_checkpoint`; returns metadata.

    The model architecture must match (same parameter names and shapes);
    mismatches raise :class:`~repro.errors.ConfigError` via
    ``load_state_dict``, as do corrupt payloads and checkpoints written by
    a newer format version.  Pass ``optimizer=`` / ``scheduler=`` to also
    restore training state; asking for state a checkpoint does not carry
    raises :class:`~repro.errors.ConfigError` (resuming would silently
    reset the trajectory otherwise).
    """
    with open_archive(path, what="checkpoint") as archive:
        check_format_version(
            read_format_version(archive, _VERSION_KEY),
            CHECKPOINT_FORMAT_VERSION,
            what=f"checkpoint {path}",
        )
        metadata = (
            decode_json(archive[_METADATA_KEY], "checkpoint metadata")
            if _METADATA_KEY in archive
            else {}
        )
        train_state = (
            decode_json(archive[_TRAIN_STATE_KEY], "checkpoint training state")
            if _TRAIN_STATE_KEY in archive
            else {}
        )
        optim_arrays: dict[str, dict[str, np.ndarray]] = {}
        state = {}
        for key in archive.files:
            if key in (_METADATA_KEY, _TRAIN_STATE_KEY, _VERSION_KEY):
                continue
            if key.startswith(_OPTIM_PREFIX):
                index, name = key[len(_OPTIM_PREFIX):].split("/", 1)
                optim_arrays.setdefault(index, {})[name] = archive[key]
                continue
            state[key] = archive[key]
    model.load_state_dict(state)
    if optimizer is not None:
        if "optimizer" not in train_state:
            raise ConfigError(
                "checkpoint carries no optimizer state; save with "
                "save_checkpoint(..., optimizer=...) to resume training"
            )
        optimizer.load_state_dict({**train_state["optimizer"], "state": optim_arrays})
    if scheduler is not None:
        if "scheduler" not in train_state:
            raise ConfigError(
                "checkpoint carries no scheduler state; save with "
                "save_checkpoint(..., scheduler=...) to resume training"
            )
        scheduler.load_state_dict(train_state["scheduler"])
    return metadata
