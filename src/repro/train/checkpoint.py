"""Model + training-state checkpointing, crash-consistently.

Serializes a module's ``state_dict`` (plus arbitrary JSON-compatible
metadata) to a single ``.npz`` file.  Used to hand pretrained encoders to
finetuning runs and to resume interrupted training.  The frozen
*inference* bundle — config + weights + dtype, loadable without the
training stack — is :class:`repro.serve.ModelArtifact`, which shares this
file format's core via :mod:`repro.serialize`.

Resuming *correctly* needs more than weights: Adam's first/second moments,
its bias-correction step count, and the scheduler epoch all shape the next
update.  Pass ``optimizer=`` / ``scheduler=`` to both
:func:`save_checkpoint` and :func:`load_checkpoint` and a resumed run
reproduces the uninterrupted run exactly (tested in
``tests/train/test_resume.py``); omitting them restores weights only, as
before.

Durability: :func:`save_checkpoint` rides
:func:`repro.serialize.atomic_savez` — temp-file + fsync + atomic rename
+ directory fsync, with a sha256 content digest embedded in the bundle
and the previous good file rotated to ``<name>.bak``.  A ``kill -9`` or
``ENOSPC`` at any point during a save leaves the old checkpoint intact;
:func:`load_checkpoint` verifies the digest and falls back to the
``.bak`` when the primary is damaged, so the worst outcome of any crash
is "one save lost", never "all checkpoints lost".
:class:`CheckpointManager` layers numbered, pruned checkpoint series on
top for long runs (and the training supervisor).

Checkpoints carry a format version.  :func:`load_checkpoint` raises
:class:`~repro.errors.ConfigError` — never ``KeyError`` or silent
garbage — on a version newer than this build, corrupt JSON payloads,
missing/unexpected parameters, or shape mismatches; truncated or
digest-mismatched files raise :class:`~repro.errors.IntegrityError`.
Unversioned files from older builds still load (version 0), and files
from before digests existed load unverified.
"""

from __future__ import annotations

import pathlib
import re

import numpy as np

from repro.errors import ConfigError, IntegrityError
from repro.nn.module import Module
from repro.serialize import (
    atomic_savez,
    backup_path,
    check_format_version,
    decode_json,
    encode_json,
    read_with_backup,
)

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointManager",
    "CHECKPOINT_FORMAT_VERSION",
]

#: Bump when the on-disk layout changes incompatibly.  Version 1 added the
#: explicit version key; version 2 added the embedded integrity digest
#: (additive — version-0/1 files still load, unverified).
CHECKPOINT_FORMAT_VERSION = 2

_METADATA_KEY = "__checkpoint_metadata__"
#: JSON blob holding optimizer scalars and the scheduler state.
_TRAIN_STATE_KEY = "__train_state__"
#: Integer format version of the bundle.
_VERSION_KEY = "__checkpoint_format__"
#: Prefix for optimizer accumulator arrays: ``__optim__/<param_idx>/<name>``.
_OPTIM_PREFIX = "__optim__/"
_RESERVED = (_METADATA_KEY, _TRAIN_STATE_KEY, _VERSION_KEY, _OPTIM_PREFIX)


def save_checkpoint(
    model: Module,
    path,
    metadata: dict | None = None,
    optimizer=None,
    scheduler=None,
    *,
    make_backup: bool = True,
):
    """Durably write the model's parameters (and training state) to ``path``.

    Returns the path actually written (``.npz`` appended when missing).
    The write is atomic and digest-stamped (see module docstring); when
    ``make_backup`` is true (the default) the previous checkpoint at
    ``path`` is rotated to ``<name>.bak`` first.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.Module`.
    path:
        Target file; ``.npz`` is appended by NumPy when missing — ship
        the returned path.
    metadata:
        JSON-serializable dict stored alongside the weights (e.g. epoch,
        config fields, metrics).
    optimizer:
        Optional :class:`~repro.optim.Optimizer`; its full state (lr,
        step count, per-parameter moments) is persisted so a resumed run
        continues the same trajectory instead of silently resetting Adam.
    scheduler:
        Optional :class:`~repro.optim.lr_scheduler.LRScheduler`; persists
        the schedule epoch so resumed warmup/decay picks up where it left
        off.
    make_backup:
        Rotate the existing file to ``<name>.bak`` before replacing it.
    """
    state = model.state_dict()
    for name in state:
        if name.startswith(_RESERVED):
            raise ConfigError(f"parameter name {name!r} collides with a reserved key")
    payload = dict(state)
    payload[_METADATA_KEY] = encode_json(metadata or {})
    payload[_VERSION_KEY] = np.asarray(CHECKPOINT_FORMAT_VERSION, dtype=np.int64)
    train_state: dict = {}
    if optimizer is not None:
        optim_state = optimizer.state_dict()
        for index, arrays in optim_state.pop("state").items():
            for name, value in arrays.items():
                payload[f"{_OPTIM_PREFIX}{index}/{name}"] = value
        train_state["optimizer"] = optim_state  # scalars only
    if scheduler is not None:
        train_state["scheduler"] = scheduler.state_dict()
    if train_state:
        payload[_TRAIN_STATE_KEY] = encode_json(train_state)
    return atomic_savez(path, payload, make_backup=make_backup)


def load_checkpoint(model: Module, path, optimizer=None, scheduler=None) -> dict:
    """Load parameters saved by :func:`save_checkpoint`; returns metadata.

    The bundle is read eagerly and its sha256 content digest verified; a
    truncated or corrupted file raises
    :class:`~repro.errors.IntegrityError` — unless a last-good
    ``<name>.bak`` rotation exists and verifies, in which case it loads
    from the backup instead (the metadata then reflects the backup).

    The model architecture must match (same parameter names and shapes);
    mismatches raise :class:`~repro.errors.ConfigError` via
    ``load_state_dict``, as do corrupt payloads and checkpoints written by
    a newer format version.  Pass ``optimizer=`` / ``scheduler=`` to also
    restore training state; asking for state a checkpoint does not carry
    raises :class:`~repro.errors.ConfigError` (resuming would silently
    reset the trajectory otherwise).
    """
    payload, _ = read_with_backup(path, what="checkpoint")
    check_format_version(
        _payload_version(payload),
        CHECKPOINT_FORMAT_VERSION,
        what=f"checkpoint {path}",
    )
    metadata = (
        decode_json(payload[_METADATA_KEY], "checkpoint metadata")
        if _METADATA_KEY in payload
        else {}
    )
    train_state = (
        decode_json(payload[_TRAIN_STATE_KEY], "checkpoint training state")
        if _TRAIN_STATE_KEY in payload
        else {}
    )
    optim_arrays: dict[str, dict[str, np.ndarray]] = {}
    state = {}
    for key, value in payload.items():
        if key in (_METADATA_KEY, _TRAIN_STATE_KEY, _VERSION_KEY):
            continue
        if key.startswith(_OPTIM_PREFIX):
            index, name = key[len(_OPTIM_PREFIX):].split("/", 1)
            optim_arrays.setdefault(index, {})[name] = value
            continue
        state[key] = value
    model.load_state_dict(state)
    if optimizer is not None:
        if "optimizer" not in train_state:
            raise ConfigError(
                "checkpoint carries no optimizer state; save with "
                "save_checkpoint(..., optimizer=...) to resume training"
            )
        optimizer.load_state_dict({**train_state["optimizer"], "state": optim_arrays})
    if scheduler is not None:
        if "scheduler" not in train_state:
            raise ConfigError(
                "checkpoint carries no scheduler state; save with "
                "save_checkpoint(..., scheduler=...) to resume training"
            )
        scheduler.load_state_dict(train_state["scheduler"])
    return metadata


def _payload_version(payload: dict) -> int:
    """Format version of an eagerly-loaded payload (0 when pre-versioning)."""
    if _VERSION_KEY not in payload:
        return 0
    try:
        return int(np.asarray(payload[_VERSION_KEY]).reshape(()))
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"corrupt format-version entry {_VERSION_KEY!r}: {exc}") from None


class CheckpointManager:
    """Numbered, pruned, verified checkpoint series for long runs.

    Writes ``<prefix>-<step:08d>.npz`` files into a directory via
    :func:`save_checkpoint` (atomic + digest-stamped + ``.bak``-rotated)
    and keeps only the newest ``keep_last`` — older files *and their
    backups* are pruned after each successful save, never before, so a
    crash mid-save cannot reduce the number of loadable checkpoints.

    :meth:`load_latest` walks the series newest-first and restores the
    first checkpoint that passes verification, skipping (not deleting)
    damaged ones — the recovery primitive the training supervisor builds
    on.
    """

    def __init__(
        self,
        directory,
        prefix: str = "ckpt",
        keep_last: int = 3,
    ) -> None:
        if keep_last < 1:
            raise ConfigError(f"keep_last must be >= 1, got {keep_last}")
        if not re.fullmatch(r"[A-Za-z0-9_.-]+", prefix):
            raise ConfigError(f"checkpoint prefix must be a simple name, got {prefix!r}")
        self.directory = pathlib.Path(directory)
        self.prefix = prefix
        self.keep_last = keep_last
        self._pattern = re.compile(re.escape(prefix) + r"-(\d{8})\.npz$")

    # ------------------------------------------------------------------
    def path_for(self, step: int) -> pathlib.Path:
        return self.directory / f"{self.prefix}-{step:08d}.npz"

    def steps(self) -> list[int]:
        """All step numbers with a checkpoint file on disk, ascending."""
        if not self.directory.is_dir():
            return []
        found = []
        for entry in self.directory.iterdir():
            match = self._pattern.fullmatch(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    # ------------------------------------------------------------------
    def save(
        self,
        model: Module,
        step: int,
        metadata: dict | None = None,
        optimizer=None,
        scheduler=None,
    ) -> pathlib.Path:
        """Save step ``step`` durably, then prune beyond ``keep_last``."""
        if step < 0:
            raise ConfigError(f"checkpoint step must be >= 0, got {step}")
        self.directory.mkdir(parents=True, exist_ok=True)
        meta = dict(metadata or {})
        meta.setdefault("step", int(step))
        target = save_checkpoint(
            model,
            self.path_for(step),
            metadata=meta,
            optimizer=optimizer,
            scheduler=scheduler,
        )
        self._prune()
        return target

    def _prune(self) -> None:
        for step in self.steps()[: -self.keep_last]:
            stale = self.path_for(step)
            stale.unlink(missing_ok=True)
            backup_path(stale).unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def latest_verified(self) -> pathlib.Path | None:
        """Newest checkpoint path whose bundle passes verification.

        Walks newest-first; a checkpoint that fails its digest (and
        whose ``.bak`` also fails) is skipped, not deleted — the older
        survivor is the recovery point.  Returns None when nothing on
        disk verifies.
        """
        for step in reversed(self.steps()):
            candidate = self.path_for(step)
            try:
                read_with_backup(candidate, what="checkpoint")
            except (IntegrityError, ConfigError):
                continue
            return candidate
        return None

    def load_latest(self, model: Module, optimizer=None, scheduler=None) -> dict | None:
        """Restore the newest verifiable checkpoint; None when none exists.

        Returns the restored checkpoint's metadata (which carries
        ``step``).  Architecture mismatches against a *verified* bundle
        still raise :class:`~repro.errors.ConfigError` — that is a
        caller bug, not corruption, and silently skipping to an older
        file would mask it.
        """
        latest = self.latest_verified()
        if latest is None:
            return None
        return load_checkpoint(model, latest, optimizer=optimizer, scheduler=scheduler)
