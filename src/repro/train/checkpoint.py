"""Model + training-state checkpointing.

Serializes a module's ``state_dict`` (plus arbitrary JSON-compatible
metadata) to a single ``.npz`` file.  Used to hand pretrained encoders to
finetuning runs and to resume interrupted training.

Resuming *correctly* needs more than weights: Adam's first/second moments,
its bias-correction step count, and the scheduler epoch all shape the next
update.  Pass ``optimizer=`` / ``scheduler=`` to both
:func:`save_checkpoint` and :func:`load_checkpoint` and a resumed run
reproduces the uninterrupted run exactly (tested in
``tests/train/test_resume.py``); omitting them restores weights only, as
before.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]

_METADATA_KEY = "__checkpoint_metadata__"
#: JSON blob holding optimizer scalars and the scheduler state.
_TRAIN_STATE_KEY = "__train_state__"
#: Prefix for optimizer accumulator arrays: ``__optim__/<param_idx>/<name>``.
_OPTIM_PREFIX = "__optim__/"
_RESERVED = (_METADATA_KEY, _TRAIN_STATE_KEY, _OPTIM_PREFIX)


def _encode_json(payload: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(payload).encode("utf-8"), dtype=np.uint8)


def save_checkpoint(
    model: Module,
    path,
    metadata: dict | None = None,
    optimizer=None,
    scheduler=None,
) -> None:
    """Write the model's parameters (and optional training state) to ``path``.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.Module`.
    path:
        Target file; ``.npz`` is appended by NumPy when missing.
    metadata:
        JSON-serializable dict stored alongside the weights (e.g. epoch,
        config fields, metrics).
    optimizer:
        Optional :class:`~repro.optim.Optimizer`; its full state (lr,
        step count, per-parameter moments) is persisted so a resumed run
        continues the same trajectory instead of silently resetting Adam.
    scheduler:
        Optional :class:`~repro.optim.lr_scheduler.LRScheduler`; persists
        the schedule epoch so resumed warmup/decay picks up where it left
        off.
    """
    path = pathlib.Path(path)
    state = model.state_dict()
    for name in state:
        if name.startswith(_RESERVED):
            raise ConfigError(f"parameter name {name!r} collides with a reserved key")
    payload = dict(state)
    payload[_METADATA_KEY] = _encode_json(metadata or {})
    train_state: dict = {}
    if optimizer is not None:
        optim_state = optimizer.state_dict()
        for index, arrays in optim_state.pop("state").items():
            for name, value in arrays.items():
                payload[f"{_OPTIM_PREFIX}{index}/{name}"] = value
        train_state["optimizer"] = optim_state  # scalars only
    if scheduler is not None:
        train_state["scheduler"] = scheduler.state_dict()
    if train_state:
        payload[_TRAIN_STATE_KEY] = _encode_json(train_state)
    np.savez(path, **payload)


def load_checkpoint(model: Module, path, optimizer=None, scheduler=None) -> dict:
    """Load parameters saved by :func:`save_checkpoint`; returns metadata.

    The model architecture must match (same parameter names and shapes);
    mismatches raise :class:`~repro.errors.ConfigError` via
    ``load_state_dict``.  Pass ``optimizer=`` / ``scheduler=`` to also
    restore training state; asking for state a checkpoint does not carry
    raises :class:`~repro.errors.ConfigError` (resuming would silently
    reset the trajectory otherwise).
    """
    path = pathlib.Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        metadata_bytes = archive[_METADATA_KEY].tobytes() if _METADATA_KEY in archive else b"{}"
        train_bytes = (
            archive[_TRAIN_STATE_KEY].tobytes() if _TRAIN_STATE_KEY in archive else b"{}"
        )
        optim_arrays: dict[str, dict[str, np.ndarray]] = {}
        state = {}
        for key in archive.files:
            if key in (_METADATA_KEY, _TRAIN_STATE_KEY):
                continue
            if key.startswith(_OPTIM_PREFIX):
                index, name = key[len(_OPTIM_PREFIX):].split("/", 1)
                optim_arrays.setdefault(index, {})[name] = archive[key]
                continue
            state[key] = archive[key]
    model.load_state_dict(state)
    train_state = json.loads(train_bytes.decode("utf-8"))
    if optimizer is not None:
        if "optimizer" not in train_state:
            raise ConfigError(
                "checkpoint carries no optimizer state; save with "
                "save_checkpoint(..., optimizer=...) to resume training"
            )
        optimizer.load_state_dict({**train_state["optimizer"], "state": optim_arrays})
    if scheduler is not None:
        if "scheduler" not in train_state:
            raise ConfigError(
                "checkpoint carries no scheduler state; save with "
                "save_checkpoint(..., scheduler=...) to resume training"
            )
        scheduler.load_state_dict(train_state["scheduler"])
    return json.loads(metadata_bytes.decode("utf-8"))
