"""Model checkpointing.

Serializes a module's ``state_dict`` (plus arbitrary JSON-compatible
metadata) to a single ``.npz`` file.  Used to hand pretrained encoders to
finetuning runs and to resume interrupted training.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]

_METADATA_KEY = "__checkpoint_metadata__"


def save_checkpoint(model: Module, path, metadata: dict | None = None) -> None:
    """Write the model's parameters (and optional metadata) to ``path``.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.Module`.
    path:
        Target file; ``.npz`` is appended by NumPy when missing.
    metadata:
        JSON-serializable dict stored alongside the weights (e.g. epoch,
        config fields, metrics).
    """
    path = pathlib.Path(path)
    state = model.state_dict()
    if _METADATA_KEY in state:
        raise ConfigError(f"parameter name {_METADATA_KEY!r} collides with metadata slot")
    payload = dict(state)
    payload[_METADATA_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)


def load_checkpoint(model: Module, path) -> dict:
    """Load parameters saved by :func:`save_checkpoint`; returns metadata.

    The model architecture must match (same parameter names and shapes);
    mismatches raise :class:`~repro.errors.ConfigError` via
    ``load_state_dict``.
    """
    path = pathlib.Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        metadata_bytes = archive[_METADATA_KEY].tobytes() if _METADATA_KEY in archive else b"{}"
        state = {
            key: archive[key] for key in archive.files if key != _METADATA_KEY
        }
    model.load_state_dict(state)
    return json.loads(metadata_bytes.decode("utf-8"))
