"""Training harness with the measurement points of the paper's evaluation.

The paper reports, per method and dataset:

* **training time per epoch** — forward + backward + grouping cost
  (Sec. 6.1 "Methodology");
* **grouping overhead** — K-means time inside group attention, measured
  separately so Table 4 / Fig. 4 can attribute costs;
* **inference time** — full-validation-set forward passes (Tables 6-7);
* **OOM failures** — via the simulated GPU when an ``accounting_length``
  is configured (Table 2 / Fig. 4 "N/A" entries).

The trainer also hosts the two adaptive components of Sec. 5: after every
optimizer step it advances the :class:`AdaptiveScheduler`, and between
epochs it asks the :class:`BatchSizePredictor` for a new batch size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.dataloader import DataLoader
from repro.data.dataset import ArrayDataset
from repro.errors import ConfigError, DivergenceError
from repro.kernels.backend import get_backend
from repro.kernels.parallel import ParallelNumpyBackend
from repro.kernels.threads import get_num_threads
from repro.optim.optimizer import Optimizer
from repro.scheduler.adaptive import AdaptiveScheduler
from repro.scheduler.batchsize import BatchSizePredictor
from repro.simgpu.memory import current_device

__all__ = ["EpochStats", "History", "Trainer", "evaluate_task"]


@dataclass
class EpochStats:
    """Measurements for one training epoch."""

    epoch: int
    train_loss: float
    seconds: float
    grouping_seconds: float
    batch_size: int
    mean_groups: float
    val_metrics: dict[str, float] = field(default_factory=dict)
    #: K-means runs across all group-attention layers this epoch; with an
    #: amortized recluster cadence this is below ``batches * layers``.
    reclusters: int = 0
    #: Parallel-dispatch efficiency for this epoch when the ``parallel``
    #: kernel backend is active: ``num_threads``, the epoch's
    #: ``kernel_calls`` / ``sharded_calls`` / ``shards`` deltas, and
    #: ``sharded_fraction`` (how much of the kernel traffic actually
    #: crossed the size threshold and fanned out).  Empty on other
    #: backends.
    parallel: dict[str, float] = field(default_factory=dict)


@dataclass
class History:
    """Sequence of epoch statistics with the paper's summary views."""

    epochs: list[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        self.epochs.append(stats)

    @property
    def final(self) -> EpochStats:
        if not self.epochs:
            raise ConfigError("history is empty")
        return self.epochs[-1]

    def avg_epoch_seconds(self) -> float:
        """Average training time per epoch — the paper's efficiency metric."""
        if not self.epochs:
            return 0.0
        return float(np.mean([e.seconds for e in self.epochs]))

    def total_grouping_seconds(self) -> float:
        return float(sum(e.grouping_seconds for e in self.epochs))

    def best(self, metric: str, mode: str = "max") -> float:
        values = [e.val_metrics[metric] for e in self.epochs if metric in e.val_metrics]
        if not values:
            raise ConfigError(f"metric {metric!r} never recorded")
        return max(values) if mode == "max" else min(values)


def _grouping_totals(model) -> tuple[float, int]:
    """Cumulative ``(grouping_seconds, reclusters)`` across grouping layers.

    Layers keep monotone counters, so the trainer charges per-epoch
    *deltas* — a layer that skips grouping on some step (or doesn't run at
    all) contributes nothing, instead of re-counting its stale
    ``last_stats`` every batch as the old per-step re-summation did.
    """
    seconds = 0.0
    reclusters = 0
    for layer in getattr(model, "group_attention_layers", lambda: [])():
        seconds += layer.grouping_seconds_total
        reclusters += layer.reclusters_total
    return seconds, reclusters


def _parallel_backend() -> ParallelNumpyBackend | None:
    """The active backend when it is the parallel one, else ``None``."""
    backend = get_backend()
    return backend if isinstance(backend, ParallelNumpyBackend) else None


def _parallel_epoch_stats(before: dict[str, int], after: dict[str, int]) -> dict[str, float]:
    calls = after["kernel_calls"] - before["kernel_calls"]
    sharded = after["sharded_calls"] - before["sharded_calls"]
    shards = after["shards"] - before["shards"]
    return {
        "num_threads": float(get_num_threads()),
        "kernel_calls": float(calls),
        "sharded_calls": float(sharded),
        "shards": float(shards),
        "sharded_fraction": sharded / calls if calls else 0.0,
    }


def evaluate_task(
    model, task, dataset: ArrayDataset, batch_size: int = 64, collate_fn=None
) -> dict[str, float]:
    """Run ``task.evaluate`` over a dataset and summarize (eval mode).

    Runs under ``no_grad`` so evaluation takes the inference fast path —
    no autograd graph, no backward caches — regardless of whether the
    task's ``evaluate`` disables gradients itself.  Pass
    ``collate_fn=repro.data.pad_collate`` for ragged datasets.
    """
    was_training = model.training
    model.eval()
    totals: dict[str, float] = {}
    loader = DataLoader(dataset, batch_size=batch_size, collate_fn=collate_fn)
    with no_grad():
        for batch in loader:
            for key, value in task.evaluate(model, batch).items():
                totals[key] = totals.get(key, 0.0) + value
    if was_training:
        model.train()
    return task.summarize(totals)


class Trainer:
    """Epoch loop with timing, adaptive N, dynamic batch size, and OOM checks.

    Parameters
    ----------
    model, task, optimizer:
        The model under training, a task object (see ``repro.tasks``), and
        an optimizer over ``model.parameters()``.
    adaptive_scheduler:
        Optional :class:`AdaptiveScheduler`; stepped after every batch.
    batch_predictor:
        Optional fitted :class:`BatchSizePredictor`; consulted between
        epochs to grow the batch as ``N`` shrinks.
    accounting_length:
        Paper-scale series length used for simulated-GPU memory accounting
        (e.g. 10,000 for MGH) while computation runs on scaled data.  When
        ``None``, the actual batch length is used.
    max_batch_size:
        Cap for predictor-driven batch growth.
    clip_norm:
        Optional global gradient-norm clip.
    """

    def __init__(
        self,
        model,
        task,
        optimizer: Optimizer,
        adaptive_scheduler: AdaptiveScheduler | None = None,
        batch_predictor: BatchSizePredictor | None = None,
        accounting_length: int | None = None,
        max_batch_size: int = 256,
        clip_norm: float | None = None,
    ) -> None:
        self.model = model
        self.task = task
        self.optimizer = optimizer
        self.adaptive_scheduler = adaptive_scheduler
        self.batch_predictor = batch_predictor
        self.accounting_length = accounting_length
        self.max_batch_size = int(max_batch_size)
        self.clip_norm = clip_norm

    def _check_memory(self, batch_size: int, length: int) -> None:
        device = current_device()
        if device is None:
            return
        accounted = self.accounting_length or length
        requested = self.model.estimate_step_bytes(batch_size, accounted)
        device.check(requested, note=f"{self.model.config.attention} attention, L={accounted}")

    def train_epoch(self, loader: DataLoader) -> tuple[float, float, float, int]:
        """One epoch; returns ``(mean_loss, seconds, grouping_seconds, reclusters)``."""
        self.model.train()
        total_loss = 0.0
        n_batches = 0
        seconds_before, reclusters_before = _grouping_totals(self.model)
        started = time.perf_counter()
        for batch in loader:
            self._check_memory(len(batch["x"]), batch["x"].shape[1])
            self.optimizer.zero_grad()
            loss = self.task.loss(self.model, batch)
            loss.backward()
            if self.clip_norm is not None:
                Optimizer.clip_grad_norm(self.optimizer.parameters, self.clip_norm)
            self.optimizer.step()
            if self.adaptive_scheduler is not None:
                self.adaptive_scheduler.step()
            batch_loss = float(loss.data)
            if not np.isfinite(batch_loss):
                raise DivergenceError(
                    f"training diverged: batch loss is {batch_loss} at epoch batch "
                    f"{n_batches} — a NaN/inf loss poisons every later update; "
                    f"roll back to the last checkpoint (lower the learning rate "
                    f"or clip gradients if it recurs)"
                )
            total_loss += batch_loss
            n_batches += 1
        seconds = time.perf_counter() - started
        seconds_after, reclusters_after = _grouping_totals(self.model)
        return (
            total_loss / max(n_batches, 1),
            seconds,
            seconds_after - seconds_before,
            reclusters_after - reclusters_before,
        )

    def fit(
        self,
        train_dataset: ArrayDataset,
        epochs: int,
        batch_size: int = 32,
        val_dataset: ArrayDataset | None = None,
        shuffle: bool = True,
        rng: np.random.Generator | None = None,
        verbose: bool = False,
        early_stopping=None,
        collate_fn=None,
        bucket_by_length: bool = False,
    ) -> History:
        """Train for up to ``epochs`` epochs, recording the paper's measurements.

        ``early_stopping``: optional :class:`~repro.train.EarlyStopping`;
        consulted after every validation pass (requires ``val_dataset``).

        ``collate_fn`` / ``bucket_by_length`` configure the internal
        loader for ragged datasets — pass
        :func:`repro.data.pad_collate` with a
        :class:`~repro.data.RaggedDataset` to train on variable-length
        series with length-bucketed batches.

        When the ``parallel`` kernel backend is active the loader folds
        tail batches smaller than the thread count into their neighbour
        (``min_batch_size``) so every forward has enough rows to shard,
        and each :class:`EpochStats` carries that epoch's dispatch
        counters in ``stats.parallel``.
        """
        backend = _parallel_backend()
        min_batch_size = None
        if backend is not None and get_num_threads() > 1:
            min_batch_size = min(get_num_threads(), batch_size)
        loader = DataLoader(
            train_dataset, batch_size=batch_size, shuffle=shuffle, rng=rng,
            collate_fn=collate_fn, bucket_by_length=bucket_by_length,
            min_batch_size=min_batch_size,
        )
        history = History()
        for epoch in range(1, epochs + 1):
            counters_before = None if backend is None else backend.snapshot()
            mean_loss, seconds, grouping, reclusters = self.train_epoch(loader)
            stats = EpochStats(
                epoch=epoch,
                train_loss=mean_loss,
                seconds=seconds,
                grouping_seconds=grouping,
                batch_size=loader.batch_size,
                mean_groups=self.model.mean_groups(),
                reclusters=reclusters,
            )
            if val_dataset is not None:
                stats.val_metrics = evaluate_task(
                    self.model, self.task, val_dataset, collate_fn=collate_fn
                )
            if counters_before is not None:
                stats.parallel = _parallel_epoch_stats(counters_before, backend.snapshot())
            history.append(stats)
            if verbose:
                print(
                    f"epoch {epoch:3d} loss={mean_loss:.4f} "
                    f"time={seconds:.2f}s groups={stats.mean_groups:.1f} "
                    f"val={stats.val_metrics}"
                )
            if early_stopping is not None and val_dataset is not None:
                value = stats.val_metrics.get(early_stopping.metric)
                if value is not None and early_stopping.update(value, self.model):
                    break
            self._maybe_grow_batch(loader, train_dataset)
        return history

    def _maybe_grow_batch(self, loader: DataLoader, dataset: ArrayDataset) -> None:
        """Ask the batch predictor for a new batch size as ``N`` shrinks."""
        if self.batch_predictor is None:
            return
        mean_groups = self.model.mean_groups()
        if mean_groups <= 0:
            return
        length = self.accounting_length or dataset[0]["x"].shape[0]
        predicted = self.batch_predictor.predict(length, mean_groups)
        new_size = int(np.clip(predicted, 1, min(self.max_batch_size, len(dataset))))
        if new_size > loader.batch_size:
            loader.set_batch_size(new_size)

    def measure_inference(self, dataset: ArrayDataset, batch_size: int = 64) -> float:
        """Wall-clock seconds for one full forward pass over ``dataset``."""
        was_training = self.model.training
        self.model.eval()
        loader = DataLoader(dataset, batch_size=batch_size)
        started = time.perf_counter()
        with no_grad():
            for batch in loader:
                if self.model.classifier is not None and "y" in batch:
                    self.model.classify(Tensor(batch["x"]))
                else:
                    self.model.reconstruct(Tensor(batch["x"]))
        elapsed = time.perf_counter() - started
        if was_training:
            self.model.train()
        return elapsed
