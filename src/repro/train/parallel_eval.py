"""Process-parallel ``evaluate_task`` over shared-memory datasets.

Thread-level sharding (:mod:`repro.kernels.parallel`) wins inside a
single forward because NumPy releases the GIL in its inner loops — but a
benchmark sweep or a full-validation evaluation is *embarrassingly*
parallel at the batch level, and separate processes sidestep both the
GIL and any per-process BLAS thread contention.  This module is the
opt-in multiprocessing path for that regime:

* the model travels as a :class:`~repro.serve.artifact.ModelArtifact`
  (plain picklable data — config, weights, dtype), rebuilt once per
  worker;
* dataset arrays are published through
  :class:`multiprocessing.shared_memory.SharedMemory` so workers map
  them read-only instead of pickling gigabytes through a pipe;
* work is sharded by **whole batches**: worker *w* evaluates a
  contiguous range of batch indices, returns per-batch metric dicts, and
  the parent re-accumulates them **in batch order** — the exact float
  additions the serial :func:`~repro.train.trainer.evaluate_task` loop
  performs, so a deterministic model gives bitwise-identical summaries;
* worker RNGs derive from ``default_rng([seed, worker_index])`` — the
  spawn-safe deterministic seeding contract: re-running with the same
  seed and worker count reproduces stochastic models (group attention's
  K-means init) exactly.

Workers always use the ``spawn`` start method (fork would duplicate the
parent's thread pool and BLAS state) and run their kernels
single-threaded: process-level fan-out already owns the cores.
"""

from __future__ import annotations

import math
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.errors import ConfigError, WorkerCrashError
from repro.kernels.backend import get_backend
from repro.kernels.threads import get_num_threads
from repro.serve.artifact import ModelArtifact

__all__ = ["evaluate_task_parallel"]


def _batch_shards(num_batches: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` batch-index ranges, sizes within one."""
    workers = min(workers, num_batches)
    base, extra = divmod(num_batches, workers)
    shards = []
    start = 0
    for index in range(workers):
        stop = start + base + (1 if index < extra else 0)
        shards.append((start, stop))
        start = stop
    return shards


def _worker(job) -> dict[int, dict[str, float]]:
    """Evaluate one contiguous range of batches; runs in a spawned child."""
    (
        worker_index,
        artifact,
        task,
        descriptors,
        n_rows,
        batch_size,
        batch_start,
        batch_stop,
        backend_name,
        seed,
    ) = job
    # Imports that must happen inside the child (spawn = fresh interpreter).
    from repro.autograd.tensor import no_grad
    from repro.kernels.backend import set_backend
    from repro.kernels.policy import dtype_scope
    from repro.kernels.threads import set_num_threads

    set_backend(backend_name)
    set_num_threads(1)  # process-level fan-out owns the cores
    segments: list[shared_memory.SharedMemory] = []
    views: dict[str, np.ndarray] = {}
    try:
        for key, (name, shape, dtype_str) in descriptors.items():
            # On Python < 3.13 this attach re-registers the segment with
            # the resource tracker; spawn workers share the parent's
            # tracker (a set, so the re-register is a no-op) and the
            # parent unlinks in its finally block, so no unregister
            # gymnastics are needed here — workers only map and close.
            segment = shared_memory.SharedMemory(name=name)
            segments.append(segment)
            views[key] = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=segment.buf)
        model = artifact.build_model(rng=np.random.default_rng([seed, worker_index]))
        per_batch: dict[int, dict[str, float]] = {}
        with dtype_scope(artifact.dtype), no_grad():
            for batch_index in range(batch_start, batch_stop):
                lo = batch_index * batch_size
                hi = min(lo + batch_size, n_rows)
                # Copy out of the mapping so nothing references the
                # segment after close().
                batch = {key: np.array(view[lo:hi]) for key, view in views.items()}
                per_batch[batch_index] = {
                    key: float(value) for key, value in task.evaluate(model, batch).items()
                }
        return per_batch
    finally:
        views.clear()
        for segment in segments:
            segment.close()


def evaluate_task_parallel(
    model,
    task,
    dataset: ArrayDataset,
    batch_size: int = 64,
    num_workers: int | None = None,
    seed: int = 0,
) -> dict[str, float]:
    """``evaluate_task`` sharded across ``num_workers`` spawned processes.

    Parameters mirror :func:`~repro.train.trainer.evaluate_task`;
    ``model`` may be a live :class:`~repro.model.rita.RitaModel` (frozen
    into an artifact for transport) or a
    :class:`~repro.serve.artifact.ModelArtifact` directly.
    ``num_workers`` defaults to the thread policy
    (``RITA_NUM_THREADS``); ``seed`` drives the deterministic per-worker
    RNGs.  Dense :class:`ArrayDataset` only — ragged datasets need
    per-item padding that shared-memory mapping cannot express.

    For a deterministic model the result is **bitwise identical** to the
    serial ``evaluate_task`` on the same artifact: sharding is aligned to
    batch boundaries and the parent re-accumulates per-batch metrics in
    batch order, so every float addition happens in the serial order.
    """
    if not isinstance(dataset, ArrayDataset):
        raise ConfigError(
            "evaluate_task_parallel needs a dense ArrayDataset; got "
            f"{type(dataset).__name__}"
        )
    if batch_size < 1:
        raise ConfigError("batch_size must be >= 1")
    artifact = model if isinstance(model, ModelArtifact) else ModelArtifact.from_model(model)
    workers = get_num_threads() if num_workers is None else int(num_workers)
    if workers < 1:
        raise ConfigError("num_workers must be >= 1")
    n_rows = len(dataset)
    num_batches = math.ceil(n_rows / batch_size)
    backend_name = get_backend().name

    if workers == 1 or num_batches == 1:
        # Same accumulation loop, no processes: still evaluates the
        # artifact's frozen model, so serial and sharded runs compare.
        from repro.autograd.tensor import no_grad
        from repro.kernels.policy import dtype_scope

        built = artifact.build_model(rng=np.random.default_rng([seed, 0]))
        totals: dict[str, float] = {}
        with dtype_scope(artifact.dtype), no_grad():
            for batch_index in range(num_batches):
                lo = batch_index * batch_size
                hi = min(lo + batch_size, n_rows)
                batch = {key: value[lo:hi] for key, value in dataset.arrays.items()}
                for key, value in task.evaluate(built, batch).items():
                    totals[key] = totals.get(key, 0.0) + float(value)
        return task.summarize(totals)

    segments: list[shared_memory.SharedMemory] = []
    descriptors: dict[str, tuple[str, tuple[int, ...], str]] = {}
    try:
        for key, array in dataset.arrays.items():
            array = np.ascontiguousarray(array)
            segment = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
            np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)[...] = array
            segments.append(segment)
            descriptors[key] = (segment.name, array.shape, array.dtype.str)
        shards = _batch_shards(num_batches, workers)
        jobs = [
            (
                worker_index, artifact, task, descriptors,
                n_rows, batch_size, batch_start, batch_stop, backend_name, seed,
            )
            for worker_index, (batch_start, batch_stop) in enumerate(shards)
        ]
        context = multiprocessing.get_context("spawn")
        # ProcessPoolExecutor (not mp.Pool): a worker that dies mid-eval —
        # OOM-killed, segfaulted, SIGKILLed — surfaces as BrokenProcessPool
        # instead of hanging ``Pool.map`` forever, and the enclosing
        # try/finally still unlinks every shared-memory segment, so a
        # crashed run leaks neither a blocked caller nor /dev/shm blocks.
        try:
            with ProcessPoolExecutor(
                max_workers=len(shards), mp_context=context
            ) as pool:
                results = list(pool.map(_worker, jobs))
        except BrokenProcessPool as exc:
            raise WorkerCrashError(
                "a worker process died during parallel evaluation "
                f"({len(shards)} workers over {num_batches} batches); "
                "shared-memory segments were released"
            ) from exc
        per_batch: dict[int, dict[str, float]] = {}
        for chunk in results:
            per_batch.update(chunk)
        totals = {}
        for batch_index in range(num_batches):
            for key, value in per_batch[batch_index].items():
                totals[key] = totals.get(key, 0.0) + value
        return task.summarize(totals)
    finally:
        for segment in segments:
            segment.close()
            segment.unlink()
