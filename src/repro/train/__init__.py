"""Training harness: trainer, epoch history, metrics."""

from repro.train.metrics import accuracy, macro_f1, mae, mse
from repro.train.trainer import EpochStats, History, Trainer, evaluate_task
from repro.train.parallel_eval import evaluate_task_parallel
from repro.train.checkpoint import CheckpointManager, load_checkpoint, save_checkpoint
from repro.train.callbacks import EarlyStopping
from repro.train.supervisor import SupervisedRun, Supervisor, TrainingRecipe, TrainPlan

__all__ = [
    "accuracy",
    "macro_f1",
    "mae",
    "mse",
    "EpochStats",
    "History",
    "Trainer",
    "evaluate_task",
    "evaluate_task_parallel",
    "CheckpointManager",
    "load_checkpoint",
    "save_checkpoint",
    "EarlyStopping",
    "Supervisor",
    "SupervisedRun",
    "TrainingRecipe",
    "TrainPlan",
]
