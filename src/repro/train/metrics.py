"""Evaluation metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "mse", "mae", "macro_f1"]


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of exact label matches."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if len(targets) == 0:
        return 0.0
    return float((predictions == targets).mean())


def mse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean squared error."""
    diff = np.asarray(predictions, dtype=float) - np.asarray(targets, dtype=float)
    return float((diff ** 2).mean())


def mae(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean absolute error."""
    diff = np.asarray(predictions, dtype=float) - np.asarray(targets, dtype=float)
    return float(np.abs(diff).mean())


def macro_f1(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Unweighted mean of per-class F1 scores."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    scores = []
    for cls in np.unique(targets):
        tp = float(((predictions == cls) & (targets == cls)).sum())
        fp = float(((predictions == cls) & (targets != cls)).sum())
        fn = float(((predictions != cls) & (targets == cls)).sum())
        denom = 2 * tp + fp + fn
        scores.append(2 * tp / denom if denom > 0 else 0.0)
    return float(np.mean(scores)) if scores else 0.0
