"""Training callbacks: early stopping and best-weight tracking."""

from __future__ import annotations


from repro.errors import ConfigError

__all__ = ["EarlyStopping"]


class EarlyStopping:
    """Stop training when a validation metric stops improving.

    Parameters
    ----------
    metric:
        Key into ``EpochStats.val_metrics`` (e.g. ``"accuracy"``, ``"mse"``).
    mode:
        ``"max"`` (higher is better) or ``"min"``.
    patience:
        Number of non-improving epochs tolerated before stopping.
    min_delta:
        Minimum change that counts as an improvement.
    restore_best:
        When true, snapshot the best-epoch weights and restore them on
        stop (requires passing the model to :meth:`update`).
    """

    def __init__(
        self,
        metric: str,
        mode: str = "max",
        patience: int = 3,
        min_delta: float = 0.0,
        restore_best: bool = True,
    ) -> None:
        if mode not in {"max", "min"}:
            raise ConfigError(f"mode must be 'max' or 'min', got {mode!r}")
        if patience < 1:
            raise ConfigError("patience must be >= 1")
        self.metric = metric
        self.mode = mode
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.restore_best = restore_best
        self.best_value: float | None = None
        self.best_state: dict | None = None
        self.stale_epochs = 0
        self.stopped = False

    def _improved(self, value: float) -> bool:
        if self.best_value is None:
            return True
        if self.mode == "max":
            return value > self.best_value + self.min_delta
        return value < self.best_value - self.min_delta

    def update(self, value: float, model=None) -> bool:
        """Record one epoch's metric; returns ``True`` when training should stop."""
        if self._improved(value):
            self.best_value = float(value)
            self.stale_epochs = 0
            if self.restore_best and model is not None:
                self.best_state = model.state_dict()
        else:
            self.stale_epochs += 1
            if self.stale_epochs >= self.patience:
                self.stopped = True
                if self.restore_best and self.best_state is not None and model is not None:
                    model.load_state_dict(self.best_state)
        return self.stopped
