"""Stochastic gradient descent with momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with classical momentum and L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: dict[int, np.ndarray] = {}

    def _param_state(self, param: Parameter) -> dict[str, np.ndarray]:
        velocity = self._velocity.get(id(param))
        return {} if velocity is None else {"velocity": velocity}

    def _load_param_state(self, param: Parameter, arrays: dict[str, np.ndarray]) -> None:
        unknown = set(arrays) - {"velocity"}
        if unknown:
            raise ConfigError(
                f"SGD cannot load optimizer state keys {sorted(unknown)}; "
                "the checkpoint was saved by a different optimizer type"
            )
        self._velocity.pop(id(param), None)
        if "velocity" in arrays:
            self._velocity[id(param)] = arrays["velocity"]

    def step(self) -> None:
        self._step_count += 1
        for param, grad in self._grads():
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = velocity
            param.data -= self.lr * grad
