"""Stochastic gradient descent with momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with classical momentum and L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        for param, grad in self._grads():
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = velocity
            param.data -= self.lr * grad
