"""Optimizers and learning-rate schedules."""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.lr_scheduler import CosineAnnealingLR, LinearWarmup, LRScheduler, StepLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "LinearWarmup",
]
