"""Adam and AdamW.

The paper optimizes every model with AdamW (decoupled weight decay,
Loshchilov & Hutter) at lr = 1e-4, weight decay = 1e-4 (Sec. A.1); those
are the defaults here.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Adam with bias-corrected first/second moments.

    ``weight_decay`` here is the classical L2 penalty added to the gradient
    (what torch calls ``Adam(weight_decay=...)``); see :class:`AdamW` for
    the decoupled variant.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}

    def _param_state(self, param: Parameter) -> dict[str, np.ndarray]:
        state = {}
        m = self._m.get(id(param))
        v = self._v.get(id(param))
        if m is not None:
            state["m"] = m
        if v is not None:
            state["v"] = v
        return state

    def _load_param_state(self, param: Parameter, arrays: dict[str, np.ndarray]) -> None:
        unknown = set(arrays) - {"m", "v"}
        if unknown:
            raise ConfigError(
                f"Adam cannot load optimizer state keys {sorted(unknown)}; "
                "the checkpoint was saved by a different optimizer type"
            )
        self._m.pop(id(param), None)
        self._v.pop(id(param), None)
        if "m" in arrays:
            self._m[id(param)] = arrays["m"]
        if "v" in arrays:
            self._v[id(param)] = arrays["v"]

    def _update(self, param: Parameter, grad: np.ndarray, decoupled: bool) -> None:
        beta1, beta2 = self.betas
        if self.weight_decay and not decoupled:
            grad = grad + self.weight_decay * param.data
        key = id(param)
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = beta1 * m + (1.0 - beta1) * grad
        v = beta2 * v + (1.0 - beta2) * grad * grad
        self._m[key] = m
        self._v[key] = v
        m_hat = m / (1.0 - beta1 ** self._step_count)
        v_hat = v / (1.0 - beta2 ** self._step_count)
        update = m_hat / (np.sqrt(v_hat) + self.eps)
        if self.weight_decay and decoupled:
            update = update + self.weight_decay * param.data
        param.data -= self.lr * update

    def step(self) -> None:
        self._step_count += 1
        for param, grad in self._grads():
            self._update(param, grad, decoupled=False)


class AdamW(Adam):
    """Adam with decoupled weight decay (paper's optimizer, Sec. A.1)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 1e-4,
    ) -> None:
        super().__init__(parameters, lr=lr, betas=betas, eps=eps, weight_decay=weight_decay)

    def step(self) -> None:
        self._step_count += 1
        for param, grad in self._grads():
            self._update(param, grad, decoupled=True)
