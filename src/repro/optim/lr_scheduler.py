"""Learning-rate schedules."""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "LinearWarmup"]


class LRScheduler:
    """Base: mutates ``optimizer.lr`` on every :meth:`step` call.

    The schedule is applied immediately at construction (``get_lr(0)``),
    so epoch 0 already trains at the scheduled rate — without this,
    ``LinearWarmup`` used to leave the whole first epoch at the full base
    LR, defeating the warmup.  Subclasses must therefore set their own
    hyper-parameters *before* calling ``super().__init__``.
    """

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0
        self.optimizer.lr = self.get_lr(0)

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr(self.epoch)

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """JSON-compatible state for checkpointing (see ``save_checkpoint``)."""
        return {"epoch": self.epoch, "base_lr": self.base_lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output and re-apply the schedule."""
        self.epoch = int(state["epoch"])
        self.base_lr = float(state["base_lr"])
        self.optimizer.lr = self.get_lr(self.epoch)


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        super().__init__(optimizer)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0) -> None:
        self.t_max = int(t_max)
        self.min_lr = float(min_lr)
        super().__init__(optimizer)

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + math.cos(math.pi * progress))


class LinearWarmup(LRScheduler):
    """Linear ramp up to the base LR over ``warmup_epochs`` epochs.

    Applied at construction: epoch ``e`` trains at
    ``base_lr * (e + 1) / W``, reaching the base LR at epoch ``W - 1``
    and staying there.  The ``(e + 1) / W`` convention means epoch 0
    trains at ``base_lr / W`` — near zero for any real warmup length —
    rather than at exactly 0, which would spend a whole epoch on forward/
    backward passes whose updates are all ``param += 0``.
    """

    def __init__(self, optimizer: Optimizer, warmup_epochs: int) -> None:
        self.warmup_epochs = max(int(warmup_epochs), 1)
        super().__init__(optimizer)

    def get_lr(self, epoch: int) -> float:
        if epoch >= self.warmup_epochs - 1:
            return self.base_lr
        return self.base_lr * (epoch + 1) / self.warmup_epochs
