"""Learning-rate schedules."""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "LinearWarmup"]


class LRScheduler:
    """Base: mutates ``optimizer.lr`` on every :meth:`step` call."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr(self.epoch)

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        self.t_max = int(t_max)
        self.min_lr = float(min_lr)

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + math.cos(math.pi * progress))


class LinearWarmup(LRScheduler):
    """Linear ramp from 0 to the base LR over ``warmup_epochs`` epochs."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int) -> None:
        super().__init__(optimizer)
        self.warmup_epochs = max(int(warmup_epochs), 1)

    def get_lr(self, epoch: int) -> float:
        if epoch >= self.warmup_epochs:
            return self.base_lr
        return self.base_lr * epoch / self.warmup_epochs
