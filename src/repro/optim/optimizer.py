"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class: holds the parameter list and the learning rate.

    Subclasses implement :meth:`step`, reading ``param.grad`` and updating
    ``param.data`` in place.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self._step_count = 0

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _grads(self):
        """Yield ``(param, grad)`` pairs for parameters that received gradients."""
        for param in self.parameters:
            if param.grad is not None:
                yield param, param.grad

    @staticmethod
    def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
        """Scale gradients so their global L2 norm is at most ``max_norm``."""
        params = [p for p in parameters if p.grad is not None]
        total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
        if total > max_norm and total > 0.0:
            scale = max_norm / total
            for p in params:
                p.grad = p.grad * scale
        return total
