"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class: holds the parameter list and the learning rate.

    Subclasses implement :meth:`step`, reading ``param.grad`` and updating
    ``param.data`` in place.  They also expose their accumulator state
    (Adam moments, SGD velocities) through :meth:`_param_state` /
    :meth:`_load_param_state` so :meth:`state_dict` can round-trip it —
    resuming from a checkpoint must continue the *same* trajectory, not
    restart the moments from zero.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigError("optimizer received no parameters")
        self.lr = float(lr)
        self._step_count = 0

    # -- state (checkpoint resume) --------------------------------------
    def _param_state(self, param: Parameter) -> dict[str, np.ndarray]:
        """Per-parameter accumulator arrays (empty for stateless updates)."""
        return {}

    def _load_param_state(self, param: Parameter, arrays: dict[str, np.ndarray]) -> None:
        if arrays:
            raise ConfigError(
                f"{type(self).__name__} has no per-parameter state; got {sorted(arrays)}"
            )

    def state_dict(self) -> dict:
        """Complete optimizer state: scalars plus per-parameter arrays.

        Parameters are keyed by their position in the (stable) parameter
        list, so loading requires an optimizer built over the same model.
        """
        per_param = {}
        for i, p in enumerate(self.parameters):
            arrays = self._param_state(p)
            if arrays:
                per_param[str(i)] = {k: v.copy() for k, v in arrays.items()}
        return {"lr": self.lr, "step_count": self._step_count, "state": per_param}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto this optimizer's parameters."""
        self.lr = float(state["lr"])
        self._step_count = int(state["step_count"])
        per_param = state.get("state", {})
        unknown = set(per_param) - {str(i) for i in range(len(self.parameters))}
        if unknown:
            raise ConfigError(
                f"optimizer state refers to unknown parameter indices {sorted(unknown)}"
            )
        for i, param in enumerate(self.parameters):
            arrays = per_param.get(str(i), {})
            for name, value in arrays.items():
                if value.shape != param.shape:
                    raise ConfigError(
                        f"optimizer state {name!r} for parameter {i} has shape "
                        f"{value.shape} != parameter shape {param.shape}"
                    )
            self._load_param_state(param, {k: v.copy() for k, v in arrays.items()})

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _grads(self):
        """Yield ``(param, grad)`` pairs for parameters that received gradients."""
        for param in self.parameters:
            if param.grad is not None:
                yield param, param.grad

    @staticmethod
    def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
        """Scale gradients so their global L2 norm is at most ``max_norm``."""
        params = [p for p in parameters if p.grad is not None]
        total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
        if total > max_norm and total > 0.0:
            scale = max_norm / total
            for p in params:
                p.grad = p.grad * scale
        return total
