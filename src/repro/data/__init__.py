"""Data substrate: datasets, loaders, masking, synthetic generators, registry."""

from repro.data.dataset import ArrayDataset, train_val_split
from repro.data.dataloader import DataLoader
from repro.data.masking import Scaler, apply_timestamp_mask, mask_tail
from repro.data.windows import sliding_windows
from repro.data.synthetic import (
    GeneratedData,
    HAR_PROFILES,
    generate_ecg,
    generate_eeg,
    generate_har,
    univariate,
)
from repro.data.registry import (
    DATASETS,
    DatasetBundle,
    DatasetSpec,
    load_dataset,
    table1_rows,
)

__all__ = [
    "ArrayDataset",
    "train_val_split",
    "DataLoader",
    "Scaler",
    "apply_timestamp_mask",
    "mask_tail",
    "sliding_windows",
    "GeneratedData",
    "HAR_PROFILES",
    "generate_ecg",
    "generate_eeg",
    "generate_har",
    "univariate",
    "DATASETS",
    "DatasetBundle",
    "DatasetSpec",
    "load_dataset",
    "table1_rows",
]
