"""Data substrate: datasets, loaders, masking, synthetic generators, registry."""

from repro.data.dataset import ArrayDataset, train_val_split
from repro.data.dataloader import DataLoader
from repro.data.collate import RaggedDataset, pad_collate, pad_ragged, unpad
from repro.data.masking import Scaler, apply_timestamp_mask, mask_tail
from repro.data.windows import ragged_windows, sliding_windows
from repro.data.synthetic import (
    GeneratedData,
    HAR_PROFILES,
    generate_ecg,
    generate_eeg,
    generate_har,
    univariate,
)
from repro.data.registry import (
    DATASETS,
    DatasetBundle,
    DatasetSpec,
    load_dataset,
    table1_rows,
)

__all__ = [
    "ArrayDataset",
    "train_val_split",
    "DataLoader",
    "RaggedDataset",
    "pad_collate",
    "pad_ragged",
    "unpad",
    "Scaler",
    "apply_timestamp_mask",
    "mask_tail",
    "ragged_windows",
    "sliding_windows",
    "GeneratedData",
    "HAR_PROFILES",
    "generate_ecg",
    "generate_eeg",
    "generate_har",
    "univariate",
    "DATASETS",
    "DatasetBundle",
    "DatasetSpec",
    "load_dataset",
    "table1_rows",
]
