"""Dataset containers."""

from __future__ import annotations


import numpy as np

from repro.errors import ShapeError
from repro.rng import get_rng

__all__ = ["ArrayDataset", "train_val_split"]


class ArrayDataset:
    """A dict of aligned arrays, indexed along the first axis.

    Typical keys: ``"x"`` for series ``(n, L, m)`` and ``"y"`` for labels
    ``(n,)``.  Any number of extra keys is allowed as long as lengths match.
    """

    def __init__(self, **arrays: np.ndarray) -> None:
        if not arrays:
            raise ShapeError("ArrayDataset needs at least one array")
        lengths = {key: len(value) for key, value in arrays.items()}
        if len(set(lengths.values())) != 1:
            raise ShapeError(f"array length mismatch: {lengths}")
        self.arrays: dict[str, np.ndarray] = {k: np.asarray(v) for k, v in arrays.items()}
        self._length = next(iter(lengths.values()))

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index) -> dict[str, np.ndarray]:
        return {key: value[index] for key, value in self.arrays.items()}

    @property
    def keys(self) -> list[str]:
        return list(self.arrays)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """New dataset restricted to the given row indices."""
        return ArrayDataset(**{k: v[indices] for k, v in self.arrays.items()})

    def take(self, n: int) -> "ArrayDataset":
        """First ``n`` rows."""
        return self.subset(np.arange(min(n, len(self))))

    def per_class_subset(self, per_class: int, label_key: str = "y",
                         rng: np.random.Generator | None = None) -> "ArrayDataset":
        """Sample up to ``per_class`` rows of every class (few-label finetuning).

        The paper's "pretraining + few-label finetuning" scenario uses 100
        labelled samples per class; this helper builds that subset.
        """
        generator = get_rng(rng)
        labels = self.arrays[label_key]
        chosen: list[np.ndarray] = []
        for cls in np.unique(labels):
            pool = np.nonzero(labels == cls)[0]
            size = min(per_class, len(pool))
            chosen.append(generator.choice(pool, size=size, replace=False))
        indices = np.concatenate(chosen)
        generator.shuffle(indices)
        return self.subset(indices)


def train_val_split(
    dataset: ArrayDataset,
    val_fraction: float = 0.1,
    rng: np.random.Generator | None = None,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Random 90/10-style split; training and validation never overlap."""
    generator = get_rng(rng)
    indices = generator.permutation(len(dataset))
    n_val = max(int(len(dataset) * val_fraction), 1)
    return dataset.subset(indices[n_val:]), dataset.subset(indices[:n_val])
