"""Dataset registry: paper-scale specs and scaled loading.

Table 1 of the paper defines the evaluation corpora:

======== ========== =========== ======== ======== ========
Dataset  Train size Valid size  Length   Channels Classes
======== ========== =========== ======== ======== ========
WISDM    28,280     3,112       200      3        18
HHAR     20,484     2,296       200      3        5
RWHAR    27,253     3,059       200      3        8
ECG      31,091     3,551       2,000    12       9
MGH      8,550      950         10,000   21       N/A
======== ========== =========== ======== ======== ========

plus the univariate WISDM*/HHAR*/RWHAR* variants (one channel) and the
pretraining pools of Table 3.  :func:`load_dataset` materializes a
*scaled* instance: sample counts shrink by ``size_scale`` and lengths by
``length_scale`` so experiments run on CPU while preserving every ratio
the benchmarks compare (the ``length`` column keeps its 200 / 2,000 /
10,000 proportions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.synthetic import GeneratedData, generate_ecg, generate_eeg, generate_har, univariate
from repro.errors import ConfigError
from repro.rng import get_rng

__all__ = ["DatasetSpec", "DatasetBundle", "DATASETS", "load_dataset", "table1_rows"]


@dataclass(frozen=True)
class DatasetSpec:
    """Paper-scale statistics and the generator of a corpus."""

    name: str
    train_size: int
    valid_size: int
    length: int
    channels: int
    n_classes: int | None
    pretrain_size: int | None
    generator: Callable[..., GeneratedData]

    @property
    def labeled(self) -> bool:
        return self.n_classes is not None


def _har_generator(profile: str, channel: int | None = None):
    def generate(n_samples: int, length: int, rng: np.random.Generator) -> GeneratedData:
        data = generate_har(profile, n_samples, length, rng=rng)
        if channel is not None:
            data = univariate(data, channel)
        return data

    return generate


def _ecg_generator(n_samples: int, length: int, rng: np.random.Generator) -> GeneratedData:
    return generate_ecg(n_samples, length, rng=rng)


def _eeg_generator(n_samples: int, length: int, rng: np.random.Generator) -> GeneratedData:
    return generate_eeg(n_samples, length, rng=rng)


DATASETS: dict[str, DatasetSpec] = {
    "wisdm": DatasetSpec("wisdm", 28280, 3112, 200, 3, 18, 62231, _har_generator("wisdm")),
    "hhar": DatasetSpec("hhar", 20484, 2296, 200, 3, 5, 68294, _har_generator("hhar")),
    "rwhar": DatasetSpec("rwhar", 27253, 3059, 200, 3, 8, 63599, _har_generator("rwhar")),
    "ecg": DatasetSpec("ecg", 31091, 3551, 2000, 12, 9, 561358, _ecg_generator),
    "mgh": DatasetSpec("mgh", 8550, 950, 10000, 21, None, None, _eeg_generator),
    # Univariate variants for the GRAIL comparison (Fig. 5).
    "wisdm_uni": DatasetSpec("wisdm_uni", 28280, 3112, 200, 1, 18, 62231, _har_generator("wisdm", 0)),
    "hhar_uni": DatasetSpec("hhar_uni", 20484, 2296, 200, 1, 5, 68294, _har_generator("hhar", 0)),
    "rwhar_uni": DatasetSpec("rwhar_uni", 27253, 3059, 200, 1, 8, 63599, _har_generator("rwhar", 0)),
}


@dataclass
class DatasetBundle:
    """A materialized (scaled) dataset: train/val splits plus metadata."""

    spec: DatasetSpec
    train: ArrayDataset
    valid: ArrayDataset
    length: int
    pretrain: ArrayDataset | None = None

    @property
    def channels(self) -> int:
        return self.spec.channels

    @property
    def n_classes(self) -> int | None:
        return self.spec.n_classes


def _scaled(value: int, scale: float, minimum: int) -> int:
    return max(int(round(value * scale)), minimum)


def load_dataset(
    name: str,
    size_scale: float = 0.01,
    length_scale: float = 1.0,
    rng: np.random.Generator | None = None,
    with_pretrain: bool = False,
    pretrain_scale: float | None = None,
    min_samples: int = 32,
    min_length: int = 32,
) -> DatasetBundle:
    """Generate a scaled instance of a registered dataset.

    Parameters
    ----------
    name:
        Registry key (see :data:`DATASETS`).
    size_scale:
        Fraction of the paper's train/valid sizes to generate.
    length_scale:
        Fraction of the paper's series length (rounded, floored at
        ``min_length``).
    with_pretrain:
        Also generate the unlabeled pretraining pool of Table 3 (scaled by
        ``pretrain_scale``, defaulting to ``size_scale``).
    """
    if name not in DATASETS:
        raise ConfigError(f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}")
    spec = DATASETS[name]
    generator = get_rng(rng)
    length = _scaled(spec.length, length_scale, min_length)
    n_train = _scaled(spec.train_size, size_scale, min_samples)
    n_valid = _scaled(spec.valid_size, size_scale, max(min_samples // 4, 8))

    train_data = spec.generator(n_train, length, generator)
    valid_data = spec.generator(n_valid, length, generator)

    def to_dataset(data: GeneratedData) -> ArrayDataset:
        if data.y is not None:
            return ArrayDataset(x=data.x, y=data.y)
        return ArrayDataset(x=data.x)

    pretrain = None
    if with_pretrain and spec.pretrain_size is not None:
        scale = pretrain_scale if pretrain_scale is not None else size_scale
        n_pre = _scaled(spec.pretrain_size, scale, min_samples)
        pretrain = to_dataset(spec.generator(n_pre, length, generator))

    return DatasetBundle(
        spec=spec,
        train=to_dataset(train_data),
        valid=to_dataset(valid_data),
        length=length,
        pretrain=pretrain,
    )


def table1_rows(size_scale: float = 1.0, length_scale: float = 1.0) -> list[dict]:
    """Rows of Table 1 at the given scale (paper scale by default)."""
    rows = []
    for name in ["wisdm", "hhar", "rwhar", "ecg", "mgh"]:
        spec = DATASETS[name]
        rows.append(
            {
                "dataset": spec.name.upper(),
                "train_size": _scaled(spec.train_size, size_scale, 1),
                "valid_size": _scaled(spec.valid_size, size_scale, 1),
                "length": _scaled(spec.length, length_scale, 1),
                "channels": spec.channels,
                "classes": spec.n_classes if spec.n_classes is not None else "N/A",
            }
        )
    return rows
