"""Scaling and cloze masking (paper Sec. 3, "Self-supervised Pretraining").

The mask-and-predict task masks *timestamps* with rate ``p``: the series is
scaled to be non-negative and every channel at a masked timestamp is set to
an impossible sentinel value (-1).  The model must recover the original
values at masked positions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.rng import get_rng

__all__ = ["Scaler", "apply_timestamp_mask", "mask_tail"]


@dataclass
class Scaler:
    """Per-channel min-max scaler mapping values into [0, 1].

    Fitting on the training split and applying to both splits keeps the
    mask sentinel (-1) impossible on genuine data.
    """

    minimum: np.ndarray
    maximum: np.ndarray

    @classmethod
    def fit(cls, series: np.ndarray) -> "Scaler":
        """Fit on ``(n, L, m)`` training series."""
        if series.ndim != 3:
            raise ShapeError(f"Scaler.fit expects (n, L, m), got {series.shape}")
        minimum = series.min(axis=(0, 1))
        maximum = series.max(axis=(0, 1))
        return cls(minimum=minimum, maximum=maximum)

    def transform(self, series: np.ndarray) -> np.ndarray:
        span = np.maximum(self.maximum - self.minimum, 1e-12)
        return (series - self.minimum) / span

    def inverse(self, series: np.ndarray) -> np.ndarray:
        span = np.maximum(self.maximum - self.minimum, 1e-12)
        return series * span + self.minimum


def apply_timestamp_mask(
    series: np.ndarray,
    rate: float,
    rng: np.random.Generator | None = None,
    mask_value: float = -1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Mask whole timestamps with probability ``rate``.

    Parameters
    ----------
    series:
        ``(B, L, m)`` scaled (non-negative) series.
    rate:
        Expected fraction of masked timestamps (paper uses 0.2).

    Returns
    -------
    ``(masked_series, mask)`` where ``mask`` is boolean ``(B, L, m)``,
    true at every channel of a masked timestamp.
    """
    if series.ndim != 3:
        raise ShapeError(f"expected (B, L, m) series, got {series.shape}")
    generator = get_rng(rng)
    batch, length, channels = series.shape
    timestamp_mask = generator.random((batch, length)) < rate
    # Guarantee at least one masked timestamp per sample so losses are defined.
    empty = ~timestamp_mask.any(axis=1)
    if empty.any():
        positions = generator.integers(0, length, size=int(empty.sum()))
        timestamp_mask[np.nonzero(empty)[0], positions] = True
    mask = np.repeat(timestamp_mask[:, :, None], channels, axis=2)
    masked = series.copy()
    masked[mask] = mask_value
    return masked, mask


def mask_tail(
    series: np.ndarray,
    horizon: int,
    mask_value: float = -1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Mask the last ``horizon`` timestamps (forecasting as imputation, A.7.3)."""
    if series.ndim != 3:
        raise ShapeError(f"expected (B, L, m) series, got {series.shape}")
    if not 0 < horizon < series.shape[1]:
        raise ShapeError(f"horizon {horizon} out of range for length {series.shape[1]}")
    mask = np.zeros(series.shape, dtype=bool)
    mask[:, -horizon:, :] = True
    masked = series.copy()
    masked[mask] = mask_value
    return masked, mask
