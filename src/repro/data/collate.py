"""Padding collation for variable-length (ragged) series batches.

Real recordings differ in length (the paper's Fig. 4 sweeps 512-8192);
fixed-window batching either drops tails or cannot batch at all.  This
module provides the ragged path:

* :class:`RaggedDataset` — aligned arrays where ``"x"`` is a *list* of
  ``(L_i, m)`` series of varying length;
* :func:`pad_ragged` — left-aligned zero padding to a common length plus
  the boolean validity mask every mask-aware component consumes;
* :func:`unpad` — the inverse (mask round-trip);
* :func:`pad_collate` — a :class:`~repro.data.dataloader.DataLoader`
  ``collate_fn`` turning a ragged batch dict into ``(windows, mask)``.

Padding is **left-aligned** (valid prefix, padded tail) and the pad value
is 0.0 by default, matching the zero padding of the time-aware
convolution so a padded forward reproduces the unpadded one exactly (see
``RitaModel.window_mask``).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ShapeError

__all__ = ["RaggedDataset", "pad_ragged", "pad_collate", "unpad"]


def pad_ragged(
    series: Sequence[np.ndarray],
    pad_value: float = 0.0,
    length: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pad ``(L_i, m)`` series to ``(B, L_max, m)`` plus a ``(B, L_max)`` mask.

    ``mask[b, t]`` is true where ``t < L_b`` (left-aligned padding).
    ``length`` forces a common length larger than the longest series
    (e.g. to reuse one Linformer projection across batches).
    """
    if not len(series):
        raise ShapeError("pad_ragged received no series")
    arrays = [np.asarray(s) for s in series]
    for arr in arrays:
        if arr.ndim != 2:
            raise ShapeError(f"expected (L, m) series, got {arr.shape}")
        if arr.shape[0] < 1:
            raise ShapeError("every series needs >= 1 timestep")
    channels = {arr.shape[1] for arr in arrays}
    if len(channels) != 1:
        raise ShapeError(f"inconsistent channel counts: {sorted(channels)}")
    lengths = np.array([arr.shape[0] for arr in arrays], dtype=np.int64)
    longest = int(lengths.max())
    target = longest if length is None else int(length)
    if target < longest:
        raise ShapeError(f"length {target} shorter than longest series {longest}")
    dtype = np.result_type(*[arr.dtype for arr in arrays])
    padded = np.full((len(arrays), target, channels.pop()), pad_value, dtype=dtype)
    for row, arr in zip(padded, arrays):
        row[: arr.shape[0]] = arr
    mask = np.arange(target) < lengths[:, None]
    return padded, mask


def unpad(padded: np.ndarray, mask: np.ndarray) -> list[np.ndarray]:
    """Invert :func:`pad_ragged`: recover the list of ``(L_i, m)`` series."""
    padded = np.asarray(padded)
    mask = np.asarray(mask, dtype=bool)
    if padded.ndim != 3 or mask.shape != padded.shape[:2]:
        raise ShapeError(
            f"expected (B, L, m) series with (B, L) mask, got {padded.shape} / {mask.shape}"
        )
    lengths = mask.sum(axis=1)
    return [row[:length].copy() for row, length in zip(padded, lengths)]


def pad_collate(batch: Mapping[str, object], pad_value: float = 0.0) -> dict[str, np.ndarray]:
    """Collate a ragged batch dict into dense arrays plus a validity mask.

    The ``"x"`` entry — a list of ``(L_i, m)`` series as produced by
    :class:`RaggedDataset` — is padded with :func:`pad_ragged` and the
    mask is stored under ``"mask"``; every other entry is stacked as-is.
    Already-dense ``"x"`` arrays pass through *without* a mask, so the
    same pipeline serves fixed-length datasets on the unmasked hot path
    (and mask-unaware baseline models keep working).
    """
    out: dict[str, np.ndarray] = {}
    for key, value in batch.items():
        if key == "x":
            continue
        out[key] = np.asarray(value)
    x = batch["x"]
    if isinstance(x, np.ndarray) and x.dtype != object:
        out["x"] = x
    else:
        out["x"], out["mask"] = pad_ragged(list(x), pad_value=pad_value)
    return out


class RaggedDataset:
    """Aligned arrays where ``"x"`` holds variable-length series.

    The ragged sibling of :class:`~repro.data.dataset.ArrayDataset`:
    ``x`` is a sequence of ``(L_i, m)`` arrays; every extra key (labels,
    ids, ...) is a dense array aligned on the first axis.  Pair with
    ``DataLoader(..., collate_fn=pad_collate, bucket_by_length=True)`` so
    batches group similar lengths and padding waste stays low.
    """

    def __init__(self, x: Sequence[np.ndarray], **arrays: np.ndarray) -> None:
        self._series = [np.asarray(s) for s in x]
        for arr in self._series:
            if arr.ndim != 2:
                raise ShapeError(f"expected (L, m) series, got {arr.shape}")
        channels = {arr.shape[1] for arr in self._series} if self._series else set()
        if len(channels) > 1:
            raise ShapeError(f"inconsistent channel counts: {sorted(channels)}")
        self.arrays: dict[str, np.ndarray] = {k: np.asarray(v) for k, v in arrays.items()}
        for key, value in self.arrays.items():
            if len(value) != len(self._series):
                raise ShapeError(
                    f"array {key!r} length {len(value)} != {len(self._series)} series"
                )
        self.lengths = np.array([arr.shape[0] for arr in self._series], dtype=np.int64)

    def __len__(self) -> int:
        return len(self._series)

    def __getitem__(self, index) -> dict[str, object]:
        if np.isscalar(index) or isinstance(index, (int, np.integer)):
            item: dict[str, object] = {"x": self._series[int(index)]}
            item.update({k: v[index] for k, v in self.arrays.items()})
            return item
        idx = np.asarray(index)
        batch: dict[str, object] = {"x": [self._series[int(i)] for i in idx]}
        batch.update({k: v[idx] for k, v in self.arrays.items()})
        return batch

    @property
    def keys(self) -> list[str]:
        return ["x", *self.arrays]

    def subset(self, indices: np.ndarray) -> "RaggedDataset":
        """New dataset restricted to the given row indices."""
        idx = np.asarray(indices)
        return RaggedDataset(
            [self._series[int(i)] for i in idx],
            **{k: v[idx] for k, v in self.arrays.items()},
        )
