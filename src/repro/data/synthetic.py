"""Synthetic surrogates for the paper's evaluation datasets.

The paper evaluates on three public human-activity-recognition corpora
(WISDM, HHAR, RWHAR), a public ECG arrhythmia corpus, and the proprietary
MGH EEG corpus.  None is shippable in this offline environment, so each is
replaced by a generative process that preserves the properties the paper's
experiments exercise:

* **periodicity** — group attention's speedups come from repeated similar
  windows (Sec. 4.1), so every generator produces quasi-periodic signals;
* **class-dependent spectra** — classifiers must have signal to learn:
  classes differ in base frequency, harmonic mix, and channel energy;
* **multi-channel coupling** — channels are mixed versions of shared
  sources plus channel noise (the multi-channel gap of Sec. 3);
* **heterogeneity where the original had it** — HHAR's many devices appear
  as per-sample resampling jitter and gain, making it the harder HAR task
  exactly as in the paper;
* **shape statistics of Table 1** — lengths 200 / 2,000 / 10,000 and
  channel counts 3 / 12 / 21, scalable by a single factor for CPU budgets.

Every generator is deterministic given its RNG.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.windows import sliding_windows
from repro.errors import ConfigError
from repro.rng import get_rng

__all__ = [
    "GeneratedData",
    "generate_har",
    "generate_ecg",
    "generate_eeg",
    "univariate",
    "HAR_PROFILES",
]


@dataclass
class GeneratedData:
    """A generated corpus: series ``x`` ``(n, L, m)`` and labels ``y`` or ``None``."""

    x: np.ndarray
    y: np.ndarray | None

    @property
    def n_samples(self) -> int:
        return self.x.shape[0]

    @property
    def length(self) -> int:
        return self.x.shape[1]

    @property
    def channels(self) -> int:
        return self.x.shape[2]


# ----------------------------------------------------------------------
# Human activity recognition (WISDM / HHAR / RWHAR surrogates)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HarProfile:
    """Shape of one HAR surrogate corpus."""

    n_classes: int
    n_channels: int
    device_jitter: bool  # HHAR: heterogeneous devices (rate/gain variation)
    freq_low: float = 0.8
    freq_high: float = 3.6


HAR_PROFILES: dict[str, HarProfile] = {
    # WISDM: 18 daily activities, phone accelerometer, 3 axes.
    "wisdm": HarProfile(n_classes=18, n_channels=3, device_jitter=False),
    # HHAR: 5 activities, 12 heterogeneous devices -> jitter on.
    "hhar": HarProfile(n_classes=5, n_channels=3, device_jitter=True),
    # RWHAR: 8 locomotion-style activities.
    "rwhar": HarProfile(n_classes=8, n_channels=3, device_jitter=False),
}


def _class_parameters(profile: HarProfile, rng: np.random.Generator):
    """Fixed per-class signal parameters (drawn once per corpus)."""
    n_classes = profile.n_classes
    freqs = np.linspace(profile.freq_low, profile.freq_high, n_classes)
    rng.shuffle(freqs)
    harmonics = rng.uniform(0.1, 0.8, size=(n_classes, 2))  # 2nd/3rd harmonic weights
    channel_amp = rng.uniform(0.4, 1.6, size=(n_classes, profile.n_channels))
    phase_offsets = rng.uniform(0.0, 2.0 * math.pi, size=(n_classes, profile.n_channels))
    return freqs, harmonics, channel_amp, phase_offsets


def generate_har(
    name: str,
    n_samples: int,
    length: int,
    rng: np.random.Generator | None = None,
    sampling_rate: float = 20.0,
    noise_std: float = 0.25,
) -> GeneratedData:
    """Generate a HAR surrogate corpus (``name`` in {"wisdm", "hhar", "rwhar"}).

    Each sample of class ``c`` is a quasi-periodic signal at the class
    frequency plus class-specific harmonics, channel amplitudes, and noise.
    """
    if name not in HAR_PROFILES:
        raise ConfigError(f"unknown HAR profile {name!r}; expected {sorted(HAR_PROFILES)}")
    profile = HAR_PROFILES[name]
    generator = get_rng(rng)
    freqs, harmonics, channel_amp, phase_offsets = _class_parameters(profile, generator)

    labels = generator.integers(0, profile.n_classes, size=n_samples)
    t = np.arange(length) / sampling_rate
    x = np.empty((n_samples, length, profile.n_channels))
    for i, cls in enumerate(labels):
        freq = freqs[cls] * generator.uniform(0.92, 1.08)  # subject variation
        phase = generator.uniform(0.0, 2.0 * math.pi)
        time = t
        if profile.device_jitter:
            # Heterogeneous devices: unknown resampling factor and gain.
            time = t * generator.uniform(0.8, 1.25)
        base = np.sin(2.0 * math.pi * freq * time + phase)
        second = harmonics[cls, 0] * np.sin(4.0 * math.pi * freq * time + 2.0 * phase)
        third = harmonics[cls, 1] * np.sin(6.0 * math.pi * freq * time + 3.0 * phase)
        waveform = base + second + third
        gain = generator.uniform(0.75, 1.3) if profile.device_jitter else 1.0
        for ch in range(profile.n_channels):
            shifted = np.sin(
                2.0 * math.pi * freq * time + phase + phase_offsets[cls, ch]
            )
            signal = channel_amp[cls, ch] * (0.6 * waveform + 0.4 * shifted)
            drift = generator.uniform(-0.3, 0.3)
            x[i, :, ch] = gain * signal + drift + generator.normal(
                0.0, noise_std, size=length
            )
    return GeneratedData(x=x, y=labels)


# ----------------------------------------------------------------------
# ECG surrogate (CPSC2018-style arrhythmia corpus)
# ----------------------------------------------------------------------
def _pqrst_template(samples_per_beat: int) -> np.ndarray:
    """One heartbeat as a sum of Gaussian bumps (P, Q, R, S, T waves)."""
    u = np.linspace(0.0, 1.0, samples_per_beat, endpoint=False)
    waves = [
        (0.15, 0.02, 0.12),   # P: small bump
        (0.36, -0.12, 0.015),  # Q: small dip
        (0.40, 1.0, 0.02),    # R: spike
        (0.44, -0.25, 0.02),  # S: dip
        (0.65, 0.30, 0.06),   # T: broad bump
    ]
    beat = np.zeros(samples_per_beat)
    for center, amplitude, width in waves:
        beat += amplitude * np.exp(-0.5 * ((u - center) / width) ** 2)
    return beat


#: The nine rhythm/morphology classes, mirroring the ECG corpus of the
#: paper (normal sinus + 8 abnormality types).
ECG_CLASSES = [
    "normal", "tachycardia", "bradycardia", "afib", "dropped_beat",
    "ectopic", "st_elevation", "low_voltage", "noisy",
]


def generate_ecg(
    n_samples: int,
    length: int,
    n_channels: int = 12,
    rng: np.random.Generator | None = None,
    sampling_rate: float = 100.0,
    noise_std: float = 0.05,
) -> GeneratedData:
    """Generate a 12-lead ECG surrogate with 9 rhythm/morphology classes.

    Classes alter heart rate, beat regularity, dropped/ectopic beats, ST
    segment offset, voltage, or noise level — separable yet overlapping,
    like real arrhythmia classification.
    """
    generator = get_rng(rng)
    n_classes = len(ECG_CLASSES)
    labels = generator.integers(0, n_classes, size=n_samples)
    lead_mix = generator.uniform(0.4, 1.2, size=(n_channels,))
    lead_offsets = generator.uniform(-0.05, 0.05, size=(n_channels,))
    x = np.empty((n_samples, length, n_channels))

    for i, cls in enumerate(labels):
        name = ECG_CLASSES[cls]
        rate_hz = {
            "normal": 1.2, "tachycardia": 2.4, "bradycardia": 0.7,
        }.get(name, 1.2) * generator.uniform(0.9, 1.1)
        samples_per_beat = max(int(sampling_rate / rate_hz), 8)
        beat = _pqrst_template(samples_per_beat)
        n_beats = length // samples_per_beat + 2
        trace = np.zeros(length + 2 * samples_per_beat)
        position = 0
        for b in range(n_beats):
            interval = samples_per_beat
            if name == "afib":
                interval = int(samples_per_beat * generator.uniform(0.6, 1.4))
            if name == "dropped_beat" and generator.random() < 0.25:
                position += interval
                continue
            this_beat = beat.copy()
            if name == "ectopic" and generator.random() < 0.3:
                this_beat = -0.7 * beat  # inverted early morphology
                interval = int(samples_per_beat * 0.6)
            if name == "st_elevation":
                this_beat = this_beat + 0.15
            end = min(position + samples_per_beat, len(trace))
            trace[position:end] += this_beat[: end - position]
            position += max(interval, 4)
            if position >= length + samples_per_beat:
                break
        trace = trace[:length]
        amplitude = 0.35 if name == "low_voltage" else 1.0
        noise = noise_std * (4.0 if name == "noisy" else 1.0)
        baseline = 0.05 * np.sin(
            2.0 * math.pi * generator.uniform(0.05, 0.2) * np.arange(length) / sampling_rate
        )
        for ch in range(n_channels):
            x[i, :, ch] = (
                amplitude * lead_mix[ch] * trace
                + lead_offsets[ch]
                + baseline
                + generator.normal(0.0, noise, size=length)
            )
    return GeneratedData(x=x, y=labels)


# ----------------------------------------------------------------------
# EEG surrogate (MGH-style long unlabeled recordings)
# ----------------------------------------------------------------------
def generate_eeg(
    n_samples: int,
    length: int,
    n_channels: int = 21,
    rng: np.random.Generator | None = None,
    sampling_rate: float = 200.0,
) -> GeneratedData:
    """Generate long unlabeled EEG-like recordings (MGH surrogate).

    One long recording per "patient" is synthesized as a spatial mixture
    of band-limited oscillators (delta/theta/alpha/beta) with slowly
    drifting band powers and occasional high-amplitude bursts, then cut
    into ``length``-sized windows — the paper's preprocessing.
    """
    generator = get_rng(rng)
    bands = [(1.0, 4.0), (4.0, 8.0), (8.0, 13.0), (13.0, 30.0)]
    n_sources = len(bands) * 2
    mixing = generator.normal(0.0, 1.0, size=(n_channels, n_sources)) / math.sqrt(n_sources)

    windows_per_recording = 4
    recordings_needed = max(math.ceil(n_samples / windows_per_recording), 1)
    collected: list[np.ndarray] = []
    for _ in range(recordings_needed):
        total = length * windows_per_recording
        t = np.arange(total) / sampling_rate
        sources = np.empty((total, n_sources))
        for s in range(n_sources):
            low, high = bands[s % len(bands)]
            freq = generator.uniform(low, high)
            power_drift = 1.0 + 0.5 * np.sin(
                2.0 * math.pi * generator.uniform(0.001, 0.01) * t
                + generator.uniform(0, 2 * math.pi)
            )
            sources[:, s] = power_drift * np.sin(
                2.0 * math.pi * freq * t + generator.uniform(0, 2 * math.pi)
            )
        recording = sources @ mixing.T
        # Occasional bursts (artifact/seizure-like events).
        n_bursts = generator.integers(0, 4)
        for _ in range(n_bursts):
            start = generator.integers(0, max(total - sampling_rate, 1))
            span = int(generator.uniform(0.3, 1.0) * sampling_rate)
            burst_freq = generator.uniform(3.0, 6.0)
            window = np.hanning(span)
            burst = 3.0 * window * np.sin(
                2.0 * math.pi * burst_freq * np.arange(span) / sampling_rate
            )
            channel_weights = generator.uniform(0.2, 1.0, size=n_channels)
            recording[start : start + span] += burst[:, None] * channel_weights[None, :]
        recording += generator.normal(0.0, 0.1, size=recording.shape)
        collected.append(sliding_windows(recording, window=length))
    x = np.concatenate(collected)[:n_samples]
    return GeneratedData(x=x, y=None)


def univariate(data: GeneratedData, channel: int = 0) -> GeneratedData:
    """Project a multivariate corpus onto one channel (WISDM*/HHAR*/RWHAR*)."""
    return GeneratedData(x=data.x[:, :, channel : channel + 1], y=data.y)
