"""Minibatch iteration."""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.errors import ConfigError
from repro.rng import get_rng

__all__ = ["DataLoader"]


class DataLoader:
    """Iterates a dataset in (optionally shuffled) batches.

    Works with any dataset exposing ``__len__`` and array-index
    ``__getitem__`` (:class:`~repro.data.dataset.ArrayDataset`,
    :class:`~repro.data.collate.RaggedDataset`).

    ``batch_size`` is mutable between epochs — the trainer raises it when
    the batch-size predictor says a larger batch now fits (paper Sec. 5.2).

    Parameters
    ----------
    collate_fn:
        Optional function applied to every raw batch dict before it is
        yielded.  Pair :func:`~repro.data.collate.pad_collate` with a
        ragged dataset to emit ``(windows, mask)`` batches.
    bucket_by_length:
        Group similar-length series into the same batch (the paper's
        batching-by-length trick): sequences are ordered by length —
        random tie-breaks under ``shuffle`` — batches are carved from
        that order, and the *batch order* is shuffled.  Padding waste per
        batch stays near zero while epoch composition still varies.
        Requires a dataset with a ``lengths`` attribute.
    min_batch_size:
        When set, a trailing remainder batch smaller than this is merged
        into the previous batch instead of being yielded on its own (so
        the last batch may hold up to ``batch_size + min_batch_size - 1``
        samples).  The parallel kernel backend shards the leading batch
        dimension across ``RITA_NUM_THREADS`` workers — a tail batch
        smaller than the thread count would leave workers idle, so the
        trainer passes ``min_batch_size=get_num_threads()`` when that
        backend is active.  Ignored under ``drop_last`` (the remainder is
        dropped outright) and when the epoch has a single batch.
    """

    def __init__(
        self,
        dataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: np.random.Generator | None = None,
        collate_fn: Callable[[dict], dict] | None = None,
        bucket_by_length: bool = False,
        min_batch_size: int | None = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        if bucket_by_length and getattr(dataset, "lengths", None) is None:
            raise ConfigError(
                "bucket_by_length requires a dataset with a 'lengths' attribute "
                "(e.g. RaggedDataset)"
            )
        if min_batch_size is not None and not 1 <= min_batch_size <= batch_size:
            raise ConfigError(
                f"min_batch_size must be in [1, batch_size], got {min_batch_size}"
            )
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.collate_fn = collate_fn
        self.bucket_by_length = bool(bucket_by_length)
        self.min_batch_size = None if min_batch_size is None else int(min_batch_size)
        self._rng = get_rng(rng)
        self._order: np.ndarray | None = None  # cached identity order

    def set_batch_size(self, batch_size: int) -> None:
        """Adjust the batch size for subsequent epochs.

        Takes effect at the *next* ``__iter__``: an epoch already in flight
        keeps the batch size it started with, so a mid-epoch change never
        skips or repeats samples.
        """
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        self.batch_size = int(batch_size)

    def __len__(self) -> int:
        n_batches, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            n_batches += 1
        return n_batches

    def _epoch_order(self) -> np.ndarray:
        n = len(self.dataset)
        if self.shuffle:
            order = np.arange(n)
            self._rng.shuffle(order)
            return order
        # Unshuffled epochs all share one preallocated identity order.
        if self._order is None or len(self._order) != n:
            self._order = np.arange(n)
        return self._order

    def _epoch_batches(self, batch_size: int) -> list[np.ndarray]:
        """Index chunks for one epoch (one entry per yielded batch)."""
        if not self.bucket_by_length:
            order = self._epoch_order()
            chunks = [
                order[start : start + batch_size]
                for start in range(0, len(order), batch_size)
            ]
        else:
            lengths = np.asarray(self.dataset.lengths)
            if self.shuffle:
                # Random tie-breaks within equal lengths, so bucket
                # membership varies between epochs.
                order = np.lexsort((self._rng.random(len(lengths)), lengths))
            else:
                order = np.argsort(lengths, kind="stable")
            chunks = [
                order[start : start + batch_size]
                for start in range(0, len(order), batch_size)
            ]
        if self.drop_last:
            chunks = [c for c in chunks if len(c) == batch_size]
        elif (
            self.min_batch_size is not None
            and len(chunks) >= 2
            and len(chunks[-1]) < self.min_batch_size
        ):
            # Fold an unshardable tail into its neighbour (both come from
            # adjacent positions of the carve order, so under
            # bucket_by_length the merged batch stays length-homogeneous).
            chunks[-2] = np.concatenate([chunks[-2], chunks[-1]])
            chunks.pop()
        if self.bucket_by_length and self.shuffle:
            self._rng.shuffle(chunks)
        return chunks

    def __iter__(self) -> Iterator[dict[str, np.ndarray]]:
        batch_size = self.batch_size  # snapshot; see set_batch_size
        for chunk in self._epoch_batches(batch_size):
            batch = self.dataset[chunk]
            if self.collate_fn is not None:
                batch = self.collate_fn(batch)
            yield batch
