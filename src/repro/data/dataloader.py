"""Minibatch iteration."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.errors import ConfigError
from repro.rng import get_rng

__all__ = ["DataLoader"]


class DataLoader:
    """Iterates an :class:`ArrayDataset` in (optionally shuffled) batches.

    ``batch_size`` is mutable between epochs — the trainer raises it when
    the batch-size predictor says a larger batch now fits (paper Sec. 5.2).
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = get_rng(rng)
        self._order: np.ndarray | None = None  # cached identity order

    def set_batch_size(self, batch_size: int) -> None:
        """Adjust the batch size for subsequent epochs.

        Takes effect at the *next* ``__iter__``: an epoch already in flight
        keeps the batch size it started with, so a mid-epoch change never
        skips or repeats samples.
        """
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        self.batch_size = int(batch_size)

    def __len__(self) -> int:
        n_batches, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            n_batches += 1
        return n_batches

    def _epoch_order(self) -> np.ndarray:
        n = len(self.dataset)
        if self.shuffle:
            order = np.arange(n)
            self._rng.shuffle(order)
            return order
        # Unshuffled epochs all share one preallocated identity order.
        if self._order is None or len(self._order) != n:
            self._order = np.arange(n)
        return self._order

    def __iter__(self) -> Iterator[dict[str, np.ndarray]]:
        batch_size = self.batch_size  # snapshot; see set_batch_size
        order = self._epoch_order()
        for start in range(0, len(order), batch_size):
            chunk = order[start : start + batch_size]
            if self.drop_last and len(chunk) < batch_size:
                return
            yield self.dataset[chunk]
