"""Sliding-window sampling of long recordings.

The paper builds its training/validation samples by sliding a window over
the raw recordings (window 200 on the HAR datasets, 2,000 on ECG, 10,000
on MGH).  :func:`sliding_windows` implements that; the synthetic MGH
generator uses it to cut one long EEG recording into samples.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["sliding_windows"]


def sliding_windows(recording: np.ndarray, window: int, step: int | None = None) -> np.ndarray:
    """Cut ``(T, m)`` into ``(k, window, m)`` windows with the given step.

    ``step`` defaults to ``window`` (non-overlapping).  The tail shorter
    than ``window`` is dropped, mirroring the usual preprocessing.
    """
    if recording.ndim != 2:
        raise ShapeError(f"expected (T, m) recording, got {recording.shape}")
    if window < 1:
        raise ShapeError("window must be >= 1")
    step = window if step is None else int(step)
    if step < 1:
        raise ShapeError("step must be >= 1")
    length = recording.shape[0]
    starts = range(0, length - window + 1, step)
    if not starts:
        return np.empty((0, window, recording.shape[1]), dtype=recording.dtype)
    return np.stack([recording[s : s + window] for s in starts])
