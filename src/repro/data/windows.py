"""Sliding-window sampling of long recordings.

The paper builds its training/validation samples by sliding a window over
the raw recordings (window 200 on the HAR datasets, 2,000 on ECG, 10,000
on MGH).  :func:`sliding_windows` implements that; the synthetic MGH
generator uses it to cut one long EEG recording into samples.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["sliding_windows", "ragged_windows"]


def sliding_windows(recording: np.ndarray, window: int, step: int | None = None) -> np.ndarray:
    """Cut ``(T, m)`` into ``(k, window, m)`` windows with the given step.

    ``step`` defaults to ``window`` (non-overlapping).  The tail shorter
    than ``window`` is dropped, mirroring the usual preprocessing.
    """
    if recording.ndim != 2:
        raise ShapeError(f"expected (T, m) recording, got {recording.shape}")
    if window < 1:
        raise ShapeError("window must be >= 1")
    step = window if step is None else int(step)
    if step < 1:
        raise ShapeError("step must be >= 1")
    length = recording.shape[0]
    starts = range(0, length - window + 1, step)
    if not starts:
        return np.empty((0, window, recording.shape[1]), dtype=recording.dtype)
    return np.stack([recording[s : s + window] for s in starts])


def ragged_windows(
    recording: np.ndarray, window: int, step: int | None = None
) -> list[np.ndarray]:
    """Like :func:`sliding_windows`, but the tail is *kept*, not dropped.

    Returns a list of ``(L_i, m)`` arrays: every full window plus — when
    the recording does not divide evenly — one shorter final window
    covering the remainder.  Feed the result to
    :class:`~repro.data.collate.RaggedDataset` /
    :func:`~repro.data.collate.pad_collate` so no data is discarded; with
    padding masks through the model, the tail trains like any other
    sample.
    """
    if recording.ndim != 2:
        raise ShapeError(f"expected (T, m) recording, got {recording.shape}")
    if window < 1:
        raise ShapeError("window must be >= 1")
    step = window if step is None else int(step)
    if step < 1:
        raise ShapeError("step must be >= 1")
    length = recording.shape[0]
    starts = list(range(0, max(length - window + 1, 0), step))
    pieces = [recording[s : s + window].copy() for s in starts]
    # The window after the last full one, truncated at the recording end.
    next_start = starts[-1] + step if starts else 0
    if next_start < length:
        pieces.append(recording[next_start:].copy())
    return pieces
