"""Plain-text table rendering and the experiment registry.

``EXPERIMENT_INDEX`` maps each paper table/figure to the runner that
regenerates it and the benchmark file that wraps it — the per-experiment
index promised in DESIGN.md, queryable at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["format_table", "format_value", "ExperimentEntry", "EXPERIMENT_INDEX"]


def format_value(value, precision: int = 4) -> str:
    """Human-friendly cell rendering (None -> N/A)."""
    if value is None:
        return "N/A"
    if isinstance(value, float):
        if value != 0 and (abs(value) < 10 ** -precision or abs(value) >= 10 ** 6):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 precision: int = 4, title: str | None = None) -> str:
    """Render row dicts as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered = [[format_value(row.get(col), precision) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines)


@dataclass(frozen=True)
class ExperimentEntry:
    """One row of the per-experiment index."""

    experiment_id: str
    description: str
    workload: str
    modules: tuple[str, ...]
    bench_target: str
    runner: str


EXPERIMENT_INDEX: dict[str, ExperimentEntry] = {
    "table1": ExperimentEntry(
        "Table 1", "Dataset statistics",
        "5 multivariate + 3 univariate corpora, lengths 200/2000/10000",
        ("repro.data.synthetic", "repro.data.registry"),
        "benchmarks/test_table1_datasets.py",
        "repro.data.registry.table1_rows",
    ),
    "fig3": ExperimentEntry(
        "Figure 3", "Full-label classification: accuracy (a) and train time (b)",
        "WISDM/HHAR/RWHAR/ECG, 5 methods, full labels from scratch",
        ("repro.model", "repro.attention", "repro.baselines.tst", "repro.train"),
        "benchmarks/test_fig3_classification.py",
        "repro.experiments.runner.run_classification",
    ),
    "table2": ExperimentEntry(
        "Table 2", "Imputation MSE + training time; Vanilla/TST OOM on MGH",
        "mask rate 0.2 on all 5 multivariate datasets",
        ("repro.tasks.imputation", "repro.simgpu"),
        "benchmarks/test_table2_imputation.py",
        "repro.experiments.runner.run_imputation",
    ),
    "table3": ExperimentEntry(
        "Table 3", "Pretrain + few-label finetune vs from-scratch",
        "cloze pretraining (p=0.2), few labels per class",
        ("repro.tasks.imputation", "repro.tasks.classification"),
        "benchmarks/test_table3_pretrain_finetune.py",
        "repro.experiments.runner.run_pretrain_finetune",
    ),
    "table4": ExperimentEntry(
        "Table 4", "Adaptive scheduler vs fixed N",
        "ECG classification + MGH imputation; eps {1.5,2,3} vs N grid",
        ("repro.scheduler.adaptive", "repro.cluster.merge"),
        "benchmarks/test_table4_scheduler.py",
        "repro.experiments.runner.run_scheduler_ablation",
    ),
    "table5": ExperimentEntry(
        "Table 5", "Pretraining-set size ablation",
        "WISDM, 0..100% of the pretraining pool",
        ("repro.tasks.imputation",),
        "benchmarks/test_table5_pretrain_size.py",
        "repro.experiments.runner.run_pretrain_size_ablation",
    ),
    "fig4": ExperimentEntry(
        "Figure 4", "Varying lengths on MGH: MSE (a) and train time (b)",
        "lengths 2000..10000, imputation; Vanilla OOM >= 8000; 63x headline",
        ("repro.attention.group", "repro.simgpu"),
        "benchmarks/test_fig4_varying_length.py",
        "repro.experiments.runner.run_varying_length",
    ),
    "fig5": ExperimentEntry(
        "Figure 5", "Comparison to non-deep learning (GRAIL)",
        "univariate WISDM*/HHAR*/RWHAR*; accuracy + train time",
        ("repro.baselines.grail",),
        "benchmarks/test_fig5_grail.py",
        "repro.experiments.runner.run_grail_comparison",
    ),
    "table6": ExperimentEntry(
        "Table 6", "Inference time, classification",
        "validation-set forward pass per method",
        ("repro.train.trainer",),
        "benchmarks/test_table6_7_inference.py",
        "repro.experiments.runner.run_inference_time",
    ),
    "table7": ExperimentEntry(
        "Table 7", "Inference time, imputation (incl. MGH N/A entries)",
        "validation-set forward pass per method",
        ("repro.train.trainer",),
        "benchmarks/test_table6_7_inference.py",
        "repro.experiments.runner.run_inference_time",
    ),
}
