"""Experiment runners: one function per paper table/figure.

Each runner returns a list of row dicts with the same columns the paper
reports, ready for :func:`repro.experiments.tables.format_table`.  The
benchmark suite (``benchmarks/``) wraps these with pytest-benchmark and
records paper-vs-measured comparisons into EXPERIMENTS.md.

Memory accounting: for datasets whose paper-scale sequence length would
not fit the 16 GB V100 (MGH with Vanilla/TST), the runner consults the
simulated GPU *at paper geometry* and reports ``N/A (OOM)`` without
running — reproducing the paper's failure entries honestly while the
actual computation runs at the scaled geometry.
"""

from __future__ import annotations


import numpy as np

from repro.data.masking import Scaler
from repro.data.registry import DATASETS, load_dataset
from repro.experiments.configs import (
    BENCH,
    METHODS,
    ExperimentScale,
    build_model,
    method_display_name,
)
from repro.baselines.grail import GrailClassifier
from repro.optim.adam import AdamW
from repro.scheduler.adaptive import AdaptiveScheduler, AdaptiveSchedulerConfig
from repro.simgpu.memory import DEFAULT_CAPACITY, MemoryModel
from repro.tasks.classification import ClassificationTask
from repro.tasks.imputation import ImputationTask, PretrainTask
from repro.train.trainer import Trainer

__all__ = [
    "paper_scale_oom",
    "run_classification",
    "run_imputation",
    "run_pretrain_finetune",
    "run_scheduler_ablation",
    "run_scheduler_cell",
    "run_pretrain_size_ablation",
    "run_varying_length",
    "run_varying_length_cell",
    "run_grail_comparison",
    "run_inference_time",
]


# ----------------------------------------------------------------------
# Paper-geometry OOM accounting
# ----------------------------------------------------------------------
#: Paper reference architecture, used for OOM accounting only.
_PAPER_MEMORY = MemoryModel(dim=64, n_heads=2, n_layers=8, ffn_dim=256)


def paper_scale_oom(method: str, dataset: str, batch_size: int = 1) -> bool:
    """Would this method OOM a 16 GB V100 at the paper's sequence length?

    Uses the reference architecture of Sec. A.1 and the Table 1 lengths.
    Reproduces the ``N/A`` entries of Table 2 and Figure 4.
    """
    length = DATASETS[dataset].length
    kind = "vanilla" if method == "tst" else method
    kwargs: dict = {}
    if method == "group":
        kwargs["n_groups"] = 64
    elif method == "performer":
        kwargs["feature_dim"] = 64
    elif method == "linformer":
        kwargs["proj_dim"] = 256
    requested = _PAPER_MEMORY.step_bytes(kind, batch_size, length, **kwargs)
    return requested > DEFAULT_CAPACITY


def _make_trainer(model, task, scale: ExperimentScale, adaptive: bool) -> Trainer:
    optimizer = AdamW(model.parameters(), lr=scale.lr, weight_decay=1e-4)
    scheduler = None
    if adaptive and model.group_attention_layers():
        scheduler = AdaptiveScheduler.for_model(model)
    return Trainer(model, task, optimizer, adaptive_scheduler=scheduler)


# ----------------------------------------------------------------------
# Figure 3: full-label classification (accuracy + training time)
# ----------------------------------------------------------------------
def run_classification(
    dataset: str,
    scale: ExperimentScale = BENCH,
    methods: list[str] | None = None,
    seed: int = 0,
    adaptive: bool = True,
) -> list[dict]:
    """Train every method from scratch with full labels on one dataset."""
    methods = methods or METHODS
    rng = np.random.default_rng(seed)
    bundle = load_dataset(
        dataset, size_scale=scale.size_scale, length_scale=scale.length_scale, rng=rng
    )
    rows = []
    for method in methods:
        if paper_scale_oom(method, dataset):
            rows.append({"dataset": dataset, "method": method_display_name(method),
                         "accuracy": None, "epoch_seconds": None, "note": "N/A (OOM)"})
            continue
        model = build_model(method, bundle, scale, rng=np.random.default_rng(seed + 1))
        trainer = _make_trainer(model, ClassificationTask(), scale, adaptive)
        history = trainer.fit(
            bundle.train, epochs=scale.epochs, batch_size=scale.batch_size,
            val_dataset=bundle.valid, rng=np.random.default_rng(seed + 2),
        )
        rows.append({
            "dataset": dataset,
            "method": method_display_name(method),
            "accuracy": history.best("accuracy"),
            "epoch_seconds": history.avg_epoch_seconds(),
            "note": "",
        })
    return rows


# ----------------------------------------------------------------------
# Table 2: imputation (MSE + training time), incl. OOM entries
# ----------------------------------------------------------------------
def run_imputation(
    dataset: str,
    scale: ExperimentScale = BENCH,
    methods: list[str] | None = None,
    seed: int = 0,
    mask_rate: float = 0.2,
    adaptive: bool = True,
) -> list[dict]:
    """Train every method on masked-value recovery for one dataset."""
    methods = methods or METHODS
    rng = np.random.default_rng(seed)
    bundle = load_dataset(
        dataset, size_scale=scale.size_scale, length_scale=scale.length_scale, rng=rng
    )
    scaler = Scaler.fit(bundle.train.arrays["x"])
    rows = []
    for method in methods:
        if paper_scale_oom(method, dataset):
            rows.append({"dataset": dataset, "method": method_display_name(method),
                         "mse": None, "epoch_seconds": None, "note": "N/A (OOM)"})
            continue
        model = build_model(
            method, bundle, scale, rng=np.random.default_rng(seed + 1), with_classifier=False
        )
        task = ImputationTask(scaler, mask_rate=mask_rate, rng=np.random.default_rng(seed + 3))
        trainer = _make_trainer(model, task, scale, adaptive)
        history = trainer.fit(
            bundle.train, epochs=scale.epochs, batch_size=scale.batch_size,
            val_dataset=bundle.valid, rng=np.random.default_rng(seed + 2),
        )
        rows.append({
            "dataset": dataset,
            "method": method_display_name(method),
            "mse": history.final.val_metrics["mse"],
            "epoch_seconds": history.avg_epoch_seconds(),
            "note": "",
        })
    return rows


# ----------------------------------------------------------------------
# Table 3: pretrain + few-label finetune vs from-scratch
# ----------------------------------------------------------------------
def run_pretrain_finetune(
    dataset: str,
    scale: ExperimentScale = BENCH,
    methods: list[str] | None = None,
    seed: int = 0,
) -> list[dict]:
    """Compare few-label training from scratch vs after cloze pretraining."""
    methods = methods or METHODS
    rng = np.random.default_rng(seed)
    bundle = load_dataset(
        dataset, size_scale=scale.size_scale, length_scale=scale.length_scale,
        rng=rng, with_pretrain=True, pretrain_scale=scale.pretrain_size_scale,
    )
    scaler = Scaler.fit(bundle.train.arrays["x"])
    few_label = bundle.train.per_class_subset(
        scale.finetune_per_class, rng=np.random.default_rng(seed + 5)
    )
    rows = []
    for method in methods:
        if paper_scale_oom(method, dataset):
            rows.append({"dataset": dataset, "method": method_display_name(method),
                         "scratch": None, "pretrained": None, "note": "N/A (OOM)"})
            continue
        # From scratch on the few-label subset.
        scratch_model = build_model(method, bundle, scale, rng=np.random.default_rng(seed + 1))
        scratch_trainer = _make_trainer(scratch_model, ClassificationTask(), scale, adaptive=True)
        scratch_history = scratch_trainer.fit(
            few_label, epochs=scale.epochs, batch_size=scale.batch_size,
            val_dataset=bundle.valid, rng=np.random.default_rng(seed + 2),
        )
        # Pretrain on the unlabeled pool, then finetune the same few labels.
        pretrained_model = build_model(method, bundle, scale, rng=np.random.default_rng(seed + 1))
        pretrain_task = PretrainTask(scaler, mask_rate=0.2, rng=np.random.default_rng(seed + 4))
        pretrain_trainer = _make_trainer(pretrained_model, pretrain_task, scale, adaptive=True)
        assert bundle.pretrain is not None
        pretrain_trainer.fit(
            bundle.pretrain, epochs=scale.pretrain_epochs, batch_size=scale.batch_size,
            rng=np.random.default_rng(seed + 6),
        )
        finetune_trainer = _make_trainer(pretrained_model, ClassificationTask(), scale, adaptive=True)
        finetune_history = finetune_trainer.fit(
            few_label, epochs=scale.epochs, batch_size=scale.batch_size,
            val_dataset=bundle.valid, rng=np.random.default_rng(seed + 2),
        )
        rows.append({
            "dataset": dataset,
            "method": method_display_name(method),
            "scratch": scratch_history.best("accuracy"),
            "pretrained": finetune_history.best("accuracy"),
            "note": "",
        })
    return rows


# ----------------------------------------------------------------------
# Table 4: adaptive scheduler vs fixed N
# ----------------------------------------------------------------------
def run_scheduler_cell(
    dataset: str,
    task_kind: str,
    scale: ExperimentScale = BENCH,
    *,
    n_groups: int,
    epsilon: float | None = None,
    seed: int = 0,
) -> dict:
    """One Table-4 arm: dynamic (``epsilon`` set) or fixed-N scheduling.

    Self-contained so experiment-grid workers can run each arm as an
    independent cell: every RNG is derived freshly from ``seed``, so the
    row is identical whether arms run in one process (the classic
    benchmark path through :func:`run_scheduler_ablation`) or spread
    across workers.  Dynamic arms cap ``n_groups`` at the (scaled)
    series length, matching the ablation's historical start-N choice.
    """
    rng = np.random.default_rng(seed)
    bundle = load_dataset(
        dataset, size_scale=scale.size_scale, length_scale=scale.length_scale, rng=rng
    )
    scaler = Scaler.fit(bundle.train.arrays["x"])
    if epsilon is not None:
        n_groups = min(bundle.length, n_groups)
    model = build_model(
        "group", bundle, scale, rng=np.random.default_rng(seed + 1),
        with_classifier=task_kind == "classification", n_groups=n_groups,
    )
    if task_kind == "classification":
        task = ClassificationTask()
    else:
        task = ImputationTask(scaler, mask_rate=0.2, rng=np.random.default_rng(seed + 3))
    optimizer = AdamW(model.parameters(), lr=scale.lr, weight_decay=1e-4)
    scheduler = None
    if epsilon is not None:
        # "mean" pooling of per-(batch x head) merge counts: the
        # conservative default ("min") needs every sample to agree,
        # which rarely happens before embeddings converge.
        scheduler = AdaptiveScheduler.for_model(
            model,
            AdaptiveSchedulerConfig(epsilon=epsilon, aggregate="mean", momentum=0.8),
        )
    trainer = Trainer(model, task, optimizer, adaptive_scheduler=scheduler)
    history = trainer.fit(
        bundle.train, epochs=scale.epochs, batch_size=scale.batch_size,
        val_dataset=bundle.valid, rng=np.random.default_rng(seed + 2),
    )
    metric = (
        history.best("accuracy")
        if task_kind == "classification"
        else history.final.val_metrics["mse"]
    )
    return {
        "dataset": dataset,
        "task": task_kind,
        "scheduler": "Dynamic" if epsilon is not None else "Fixed",
        "parameter": epsilon if epsilon is not None else n_groups,
        "metric": metric,
        "epoch_seconds": history.avg_epoch_seconds(),
        "final_groups": model.mean_groups(),
    }


def run_scheduler_ablation(
    dataset: str,
    task_kind: str,
    scale: ExperimentScale = BENCH,
    epsilons: tuple[float, ...] = (1.5, 2.0, 3.0),
    fixed_ns: tuple[int, ...] = (4, 8, 16, 32),
    seed: int = 0,
) -> list[dict]:
    """Adaptive scheduling (eps grid) vs fixed group counts (N grid)."""
    rows = []
    start_n = max(fixed_ns)
    for epsilon in epsilons:
        rows.append(run_scheduler_cell(
            dataset, task_kind, scale, n_groups=start_n, epsilon=epsilon, seed=seed,
        ))
    for fixed_n in fixed_ns:
        rows.append(run_scheduler_cell(
            dataset, task_kind, scale, n_groups=fixed_n, seed=seed,
        ))
    return rows


# ----------------------------------------------------------------------
# Table 5: pretraining-set size ablation
# ----------------------------------------------------------------------
def run_pretrain_size_ablation(
    dataset: str = "wisdm",
    scale: ExperimentScale = BENCH,
    fractions: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    seed: int = 0,
) -> list[dict]:
    """Few-label accuracy as the unlabeled pretraining pool grows."""
    rng = np.random.default_rng(seed)
    bundle = load_dataset(
        dataset, size_scale=scale.size_scale, length_scale=scale.length_scale,
        rng=rng, with_pretrain=True, pretrain_scale=scale.pretrain_size_scale,
    )
    scaler = Scaler.fit(bundle.train.arrays["x"])
    few_label = bundle.train.per_class_subset(
        scale.finetune_per_class, rng=np.random.default_rng(seed + 5)
    )
    assert bundle.pretrain is not None
    pool = bundle.pretrain
    rows = []
    for fraction in fractions:
        model = build_model("group", bundle, scale, rng=np.random.default_rng(seed + 1))
        if fraction > 0:
            subset = pool.take(max(int(len(pool) * fraction), 1))
            pretask = PretrainTask(scaler, mask_rate=0.2, rng=np.random.default_rng(seed + 4))
            pre_trainer = _make_trainer(model, pretask, scale, adaptive=True)
            pre_trainer.fit(
                subset, epochs=scale.pretrain_epochs, batch_size=scale.batch_size,
                rng=np.random.default_rng(seed + 6),
            )
            pretrain_size = len(subset)
        else:
            pretrain_size = 0
        fine_trainer = _make_trainer(model, ClassificationTask(), scale, adaptive=True)
        history = fine_trainer.fit(
            few_label, epochs=scale.epochs, batch_size=scale.batch_size,
            val_dataset=bundle.valid, rng=np.random.default_rng(seed + 2),
        )
        rows.append({
            "pretrain_size": pretrain_size,
            "accuracy": history.best("accuracy"),
        })
    return rows


# ----------------------------------------------------------------------
# Figure 4: varying lengths on MGH (time + MSE per method)
# ----------------------------------------------------------------------
def run_varying_length_cell(
    paper_length: int,
    method: str,
    scale: ExperimentScale = BENCH,
    seed: int = 0,
) -> dict:
    """One Figure-4 cell: a single (paper length, method) combination.

    Self-contained for the experiment grid (every RNG derives freshly
    from ``seed``), so the row matches the serial
    :func:`run_varying_length` sweep exactly.  The OOM decision happens
    at paper geometry before any compute, like the full sweep.
    """
    kind = "vanilla" if method == "tst" else method
    kwargs = {"n_groups": 64} if method == "group" else {}
    needed = _PAPER_MEMORY.step_bytes(kind, 1, paper_length, **kwargs)
    if needed > DEFAULT_CAPACITY:
        return {"paper_length": paper_length, "method": method_display_name(method),
                "mse": None, "epoch_seconds": None, "note": "N/A (OOM)"}
    rng = np.random.default_rng(seed)
    sim_length = max(int(paper_length * scale.length_scale * 0.1), 32)
    bundle = load_dataset(
        "mgh", size_scale=scale.size_scale / 2, rng=rng,
        length_scale=sim_length / DATASETS["mgh"].length,
    )
    scaler = Scaler.fit(bundle.train.arrays["x"])
    model = build_model(
        method, bundle, scale, rng=np.random.default_rng(seed + 1), with_classifier=False
    )
    task = ImputationTask(scaler, mask_rate=0.2, rng=np.random.default_rng(seed + 3))
    trainer = _make_trainer(model, task, scale, adaptive=True)
    history = trainer.fit(
        bundle.train, epochs=max(scale.epochs // 2, 1), batch_size=scale.batch_size,
        val_dataset=bundle.valid, rng=np.random.default_rng(seed + 2),
    )
    return {
        "paper_length": paper_length,
        "method": method_display_name(method),
        "mse": history.final.val_metrics["mse"],
        "epoch_seconds": history.avg_epoch_seconds(),
        "note": "",
    }


def run_varying_length(
    lengths_paper: tuple[int, ...] = (2000, 4000, 6000, 8000, 10000),
    scale: ExperimentScale = BENCH,
    methods: list[str] | None = None,
    seed: int = 0,
) -> list[dict]:
    """Truncate MGH-style series to several lengths; measure time and MSE.

    Paper-scale lengths are mapped through ``scale.length_scale`` for the
    actual computation; OOM entries are decided at paper geometry (Vanilla
    cannot handle lengths >= 8000 on a V100 — Sec. 6.3.2).
    """
    methods = methods or ["vanilla", "performer", "linformer", "group"]
    return [
        run_varying_length_cell(paper_length, method, scale, seed)
        for paper_length in lengths_paper
        for method in methods
    ]


# ----------------------------------------------------------------------
# Figure 5: GRAIL comparison on univariate data
# ----------------------------------------------------------------------
def run_grail_comparison(
    datasets: tuple[str, ...] = ("wisdm_uni", "hhar_uni", "rwhar_uni"),
    scale: ExperimentScale = BENCH,
    seed: int = 0,
) -> list[dict]:
    """RITA (group attention) vs GRAIL on the univariate datasets."""
    rows = []
    for dataset in datasets:
        rng = np.random.default_rng(seed)
        bundle = load_dataset(
            dataset, size_scale=scale.size_scale, length_scale=scale.length_scale, rng=rng
        )
        x_train = bundle.train.arrays["x"]
        y_train = bundle.train.arrays["y"]
        x_valid = bundle.valid.arrays["x"]
        y_valid = bundle.valid.arrays["y"]

        grail = GrailClassifier(
            n_landmarks=min(24, len(x_train) // 2), classifier="knn",
            rng=np.random.default_rng(seed + 7),
        )
        grail.fit(x_train, y_train)
        grail_accuracy = grail.score(x_valid, y_valid)

        model = build_model("group", bundle, scale, rng=np.random.default_rng(seed + 1))
        trainer = _make_trainer(model, ClassificationTask(), scale, adaptive=True)
        history = trainer.fit(
            bundle.train, epochs=scale.epochs, batch_size=scale.batch_size,
            val_dataset=bundle.valid, rng=np.random.default_rng(seed + 2),
        )
        rows.append({
            "dataset": dataset,
            "rita_accuracy": history.best("accuracy"),
            "grail_accuracy": grail_accuracy,
            "rita_epoch_seconds": history.avg_epoch_seconds(),
            "grail_fit_seconds": grail.train_seconds,
        })
    return rows


# ----------------------------------------------------------------------
# Tables 6-7: inference time
# ----------------------------------------------------------------------
def run_inference_time(
    dataset: str,
    task_kind: str,
    scale: ExperimentScale = BENCH,
    methods: list[str] | None = None,
    seed: int = 0,
) -> list[dict]:
    """Wall-clock of one validation-set pass per method (no training)."""
    methods = methods or METHODS
    rng = np.random.default_rng(seed)
    bundle = load_dataset(
        dataset, size_scale=scale.size_scale, length_scale=scale.length_scale, rng=rng
    )
    rows = []
    for method in methods:
        if paper_scale_oom(method, dataset):
            rows.append({"dataset": dataset, "method": method_display_name(method),
                         "inference_seconds": None, "note": "N/A (OOM)"})
            continue
        with_classifier = task_kind == "classification"
        model = build_model(
            method, bundle, scale, rng=np.random.default_rng(seed + 1),
            with_classifier=with_classifier,
        )
        trainer = Trainer(model, ClassificationTask(), AdamW(model.parameters(), lr=scale.lr))
        seconds = trainer.measure_inference(bundle.valid, batch_size=scale.batch_size)
        rows.append({
            "dataset": dataset,
            "method": method_display_name(method),
            "inference_seconds": seconds,
            "note": "",
        })
    return rows
