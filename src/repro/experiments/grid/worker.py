"""The drain loop: claim a cell, run it, record the outcome, repeat.

A worker is deliberately boring — all the concurrency guarantees live in
:mod:`repro.experiments.grid.store`.  What the worker adds:

* a background heartbeat thread (own :class:`GridStore` connection; the
  store is single-thread) that keeps the claim fresh while a slow cell
  trains, so honest long cells are not "stale";
* per-cell seeding: ``repro.seed_all(params["seed"])`` before the runner
  fires, so a cell's result is identical whether it runs first in a
  fresh process or tenth in a long-lived worker;
* typed failure capture: a runner exception marks the *cell* as
  ``error`` (class name, message, traceback, provenance) and the loop
  moves on — one bad cell never takes down the drain.

A SIGKILLed worker simply stops heartbeating; after ``stale_after_s``
its cell is re-claimable and another worker finishes it.  If the
original worker somehow resurfaces, its ``finish_*`` fails the claim-
token check and the result is discarded (counted in ``lost``).
"""

from __future__ import annotations

import os
import threading
import traceback
import uuid
from dataclasses import dataclass, field

from repro.errors import GridStateError
from repro.experiments.grid import provenance
from repro.experiments.grid.runners import get_runner, load_runner_modules
from repro.experiments.grid.store import Claim, GridStore

__all__ = ["WorkerConfig", "WorkerReport", "run_worker"]


def _default_worker_id() -> str:
    return f"{os.uname().nodename}:{os.getpid()}:{uuid.uuid4().hex[:6]}"


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one drain loop needs."""

    db_path: str
    grid: str | None = None
    worker_id: str = field(default_factory=_default_worker_id)
    stale_after_s: float = 300.0
    heartbeat_interval_s: float = 15.0
    max_cells: int | None = None
    runner_modules: tuple[str, ...] = ()


@dataclass
class WorkerReport:
    """What one worker invocation accomplished."""

    worker_id: str
    done: int = 0
    errors: int = 0
    lost: int = 0

    @property
    def executed(self) -> int:
        return self.done + self.errors + self.lost


class _Heartbeater:
    """Daemon thread refreshing one claim on its own store connection."""

    def __init__(self, db_path: str, claim: Claim, interval_s: float) -> None:
        self._db_path = db_path
        self._claim = claim
        self._interval_s = interval_s
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._pulse, name=f"grid-heartbeat-{claim.cell_id}", daemon=True
        )

    def __enter__(self) -> "_Heartbeater":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval_s + 5.0)

    def _pulse(self) -> None:
        with GridStore(self._db_path) as store:
            while not self._stop.wait(self._interval_s):
                if not store.heartbeat(self._claim):
                    return  # claim stolen; finish_* will surface it

def _run_cell(store: GridStore, config: WorkerConfig, claim: Claim,
              report: WorkerReport) -> None:
    seed = claim.params.get("seed")
    if isinstance(seed, int):
        import repro

        repro.seed_all(seed)
    try:
        with _Heartbeater(store.path, claim, config.heartbeat_interval_s):
            result = get_runner(claim.runner)(claim.params)
        store.finish_done(
            claim, result,
            provenance.capture(rita_seed=seed if isinstance(seed, int) else None),
        )
        report.done += 1
    except GridStateError:
        report.lost += 1  # stolen claim: the re-claimant's result stands
    except Exception as exc:  # noqa: BLE001 — every runner fault becomes row state
        try:
            store.finish_error(
                claim,
                error_type=type(exc).__name__,
                error_message=str(exc),
                error_traceback=traceback.format_exc(),
                provenance=provenance.capture(
                    rita_seed=seed if isinstance(seed, int) else None
                ),
            )
            report.errors += 1
        except GridStateError:
            report.lost += 1


def run_worker(config: WorkerConfig) -> WorkerReport:
    """Drain cells until the grid is empty (or ``max_cells`` is hit)."""
    load_runner_modules(config.runner_modules)
    report = WorkerReport(worker_id=config.worker_id)
    with GridStore(config.db_path) as store:
        while config.max_cells is None or report.executed < config.max_cells:
            claim = store.claim_next(
                config.grid,
                worker_id=config.worker_id,
                stale_after_s=config.stale_after_s,
            )
            if claim is None:
                break
            _run_cell(store, config, claim, report)
    return report
