"""SQLite-backed experiment store: claimable cells with provenance columns.

One database holds any number of *grids*; each grid is a set of *cells*
(one parameterised experiment each) that move through
``pending → claimed → done | error``.  The design goals, in order:

* **N workers, zero double-runs.**  Claiming is an atomic
  compare-and-swap ``UPDATE`` on the observed ``(status, heartbeat)``
  pair — two workers racing for the same cell cannot both see
  ``rowcount == 1``.  Every claim carries a fresh token; finishing a
  cell checks the token, so a worker whose stale claim was expired and
  re-claimed by someone else cannot overwrite the new owner's result.
* **SIGKILL-proof.**  Workers heartbeat their claimed cell; a claim
  whose heartbeat is older than the staleness budget is re-claimable.
  A killed worker therefore delays its cell, never loses it.
* **Provenance as columns.**  The ``# run:`` stamp fields that result
  files have carried since PR 3 (UTC start/end, platform, Python/NumPy
  versions, CPU count) plus kernel backend, RITA seed and git SHA are
  real columns, so "is this number from a passing run on this machine?"
  is a query, not a convention.

The store is *not* shared between threads: each worker (and the
heartbeat thread) opens its own :class:`GridStore` on the same path.
WAL mode keeps concurrent claimants from serialising on reads.

No ``sqlite3`` exception crosses the public surface — every operation
wraps driver faults into :class:`repro.errors.GridError` (cause
preserved).
"""

from __future__ import annotations

import contextlib
import json
import sqlite3
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import GridError, GridSchemaError, GridStateError
from repro.experiments.grid.provenance import utc_now

__all__ = [
    "SCHEMA_VERSION",
    "STATUSES",
    "Claim",
    "CellRow",
    "FillReport",
    "GridStore",
    "cell_key",
]

#: Bump on any incompatible schema change; newer files are refused.
SCHEMA_VERSION = 1

STATUSES = ("pending", "claimed", "done", "error")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS grids (
    name        TEXT PRIMARY KEY,
    runner      TEXT NOT NULL,
    spec        TEXT,
    created_utc TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    id              INTEGER PRIMARY KEY,
    grid            TEXT NOT NULL REFERENCES grids(name),
    ordinal         INTEGER NOT NULL,
    cell_key        TEXT NOT NULL,
    params          TEXT NOT NULL,
    runner          TEXT NOT NULL,
    status          TEXT NOT NULL DEFAULT 'pending'
                    CHECK (status IN ('pending', 'claimed', 'done', 'error')),
    attempts        INTEGER NOT NULL DEFAULT 0,
    claimed_by      TEXT,
    claim_token     TEXT,
    heartbeat       REAL,
    started_utc     TEXT,
    finished_utc    TEXT,
    result          TEXT,
    error_type      TEXT,
    error_message   TEXT,
    error_traceback TEXT,
    platform        TEXT,
    python_version  TEXT,
    numpy_version   TEXT,
    cpu_count       INTEGER,
    kernel_backend  TEXT,
    rita_seed       INTEGER,
    git_sha         TEXT,
    UNIQUE (grid, cell_key)
);
CREATE INDEX IF NOT EXISTS idx_cells_grid_status ON cells (grid, status);
"""


def cell_key(params: dict) -> str:
    """Canonical key for one cell: sorted-key compact JSON of its params.

    Re-filling a grid computes the same key for the same parameters, so
    existing cells (and their results) are never duplicated or lost.
    """
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise GridError(f"cell params are not JSON-encodable: {exc}") from exc


@contextlib.contextmanager
def _wrapped(operation: str) -> Iterator[None]:
    """Translate driver faults into the typed error at the boundary."""
    try:
        yield
    except sqlite3.Error as exc:
        raise GridError(f"sqlite failure during {operation}: {exc}") from exc


@dataclass(frozen=True)
class Claim:
    """A successfully claimed cell; the token proves current ownership."""

    cell_id: int
    grid: str
    ordinal: int
    runner: str
    params: dict
    token: str
    attempts: int
    started_utc: str


@dataclass(frozen=True)
class CellRow:
    """One cell row with JSON columns decoded."""

    cell_id: int
    grid: str
    ordinal: int
    cell_key: str
    params: dict
    runner: str
    status: str
    attempts: int
    claimed_by: str | None
    heartbeat: float | None
    started_utc: str | None
    finished_utc: str | None
    result: dict | None
    error_type: str | None
    error_message: str | None
    error_traceback: str | None
    provenance: dict = field(default_factory=dict)


@dataclass(frozen=True)
class FillReport:
    """Outcome of one fill: how many cells were new vs already present."""

    grid: str
    inserted: int
    existing: int


_CELL_COLUMNS = (
    "id, grid, ordinal, cell_key, params, runner, status, attempts, "
    "claimed_by, heartbeat, started_utc, finished_utc, result, "
    "error_type, error_message, error_traceback, "
    "platform, python_version, numpy_version, cpu_count, "
    "kernel_backend, rita_seed, git_sha"
)

_PROVENANCE_COLUMNS = (
    "platform", "python_version", "numpy_version", "cpu_count",
    "kernel_backend", "rita_seed", "git_sha",
)


def _row_to_cell(row: tuple) -> CellRow:
    return CellRow(
        cell_id=row[0], grid=row[1], ordinal=row[2], cell_key=row[3],
        params=json.loads(row[4]), runner=row[5], status=row[6],
        attempts=row[7], claimed_by=row[8], heartbeat=row[9],
        started_utc=row[10], finished_utc=row[11],
        result=json.loads(row[12]) if row[12] is not None else None,
        error_type=row[13], error_message=row[14], error_traceback=row[15],
        provenance=dict(zip(_PROVENANCE_COLUMNS, row[16:23])),
    )


class GridStore:
    """One connection to a grid database (single-thread use)."""

    def __init__(self, path: str, *, create: bool = False,
                 busy_timeout_s: float = 30.0) -> None:
        self.path = str(path)
        with _wrapped(f"open {self.path!r}"):
            # Autocommit mode: single-statement writes are atomic, and
            # multi-statement sections take explicit BEGIN IMMEDIATE.
            self._conn = sqlite3.connect(
                self.path, timeout=busy_timeout_s, isolation_level=None
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            version = self._conn.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                has_cells = self._conn.execute(
                    "SELECT name FROM sqlite_master WHERE name = 'cells'"
                ).fetchone()
                if has_cells is None:
                    if not create:
                        self._conn.close()
                        raise GridSchemaError(
                            f"{self.path!r} is not an initialized grid "
                            f"database; run 'grid init' (or pass create=True)"
                        )
                    self._conn.executescript(_SCHEMA)
                    self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
                else:
                    self._conn.close()
                    raise GridSchemaError(
                        f"{self.path!r} has a cells table but no schema "
                        f"version; not a grid database written by this code"
                    )
            elif version > SCHEMA_VERSION:
                self._conn.close()
                raise GridSchemaError(
                    f"{self.path!r} uses grid schema v{version}; this code "
                    f"understands up to v{SCHEMA_VERSION} — upgrade the code, "
                    f"not the file"
                )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        with _wrapped("close"):
            self._conn.close()

    def __enter__(self) -> "GridStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- grid + cell definition ----------------------------------------
    def ensure_grid(self, name: str, runner: str, spec_json: str | None = None) -> None:
        """Create the grid row, or verify it matches an existing one."""
        with _wrapped(f"ensure_grid {name!r}"):
            existing = self._conn.execute(
                "SELECT runner FROM grids WHERE name = ?", (name,)
            ).fetchone()
            if existing is None:
                self._conn.execute(
                    "INSERT INTO grids (name, runner, spec, created_utc) "
                    "VALUES (?, ?, ?, ?)",
                    (name, runner, spec_json, utc_now()),
                )
            elif existing[0] != runner:
                raise GridStateError(
                    f"grid {name!r} already exists with runner "
                    f"{existing[0]!r}; refusing to re-fill it with runner "
                    f"{runner!r}"
                )

    def fill(self, name: str, runner: str, cells: list[dict],
             spec_json: str | None = None) -> FillReport:
        """Insert missing cells; existing (grid, key) pairs are kept as-is.

        Re-filling an extended grid therefore only *appends* the new
        cells — finished work is never re-queued or overwritten.
        """
        keys = [cell_key(params) for params in cells]
        if len(set(keys)) != len(keys):
            raise GridError(
                f"grid {name!r} expansion contains duplicate cells; every "
                f"cell's params must be unique within a grid"
            )
        self.ensure_grid(name, runner, spec_json)
        inserted = 0
        with _wrapped(f"fill {name!r}"):
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for ordinal, (params, key) in enumerate(zip(cells, keys)):
                    cursor = self._conn.execute(
                        "INSERT OR IGNORE INTO cells "
                        "(grid, ordinal, cell_key, params, runner) "
                        "VALUES (?, ?, ?, ?, ?)",
                        (name, ordinal, key, json.dumps(params), runner),
                    )
                    inserted += cursor.rowcount
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return FillReport(grid=name, inserted=inserted, existing=len(cells) - inserted)

    # -- claiming ------------------------------------------------------
    def claim_next(self, grid: str | None = None, *, worker_id: str,
                   stale_after_s: float = 300.0) -> Claim | None:
        """Atomically claim the next runnable cell, or None if drained.

        Runnable means ``pending``, or ``claimed`` with a heartbeat older
        than ``stale_after_s`` (the owner is presumed dead).  The CAS
        guard re-checks the exact observed ``(status, heartbeat)`` pair,
        so concurrent claimants can race but never both win.
        """
        grid_clause = "grid = ?" if grid is not None else "1=1"
        while True:
            now = time.time()
            with _wrapped("claim_next select"):
                row = self._conn.execute(
                    f"SELECT id, grid, ordinal, runner, params, status, "
                    f"heartbeat, attempts FROM cells WHERE {grid_clause} "
                    f"AND (status = 'pending' OR "
                    f"     (status = 'claimed' AND heartbeat < ?)) "
                    f"ORDER BY grid, ordinal LIMIT 1",
                    ((grid, now - stale_after_s) if grid is not None
                     else (now - stale_after_s,)),
                ).fetchone()
            if row is None:
                return None
            (cid, cgrid, ordinal, runner, params_json,
             seen_status, seen_heartbeat, attempts) = row
            token = uuid.uuid4().hex
            started = utc_now()
            with _wrapped("claim_next cas"):
                cursor = self._conn.execute(
                    "UPDATE cells SET status = 'claimed', claimed_by = ?, "
                    "claim_token = ?, heartbeat = ?, started_utc = ?, "
                    "attempts = attempts + 1 "
                    "WHERE id = ? AND status = ? AND heartbeat IS ?",
                    (worker_id, token, time.time(), started,
                     cid, seen_status, seen_heartbeat),
                )
            if cursor.rowcount == 1:
                return Claim(
                    cell_id=cid, grid=cgrid, ordinal=ordinal, runner=runner,
                    params=json.loads(params_json), token=token,
                    attempts=attempts + 1, started_utc=started,
                )
            # Lost the race for this cell; another worker owns it now.

    def heartbeat(self, claim: Claim) -> bool:
        """Refresh the claim's liveness; False means the claim was stolen."""
        with _wrapped("heartbeat"):
            cursor = self._conn.execute(
                "UPDATE cells SET heartbeat = ? WHERE id = ? "
                "AND status = 'claimed' AND claim_token = ?",
                (time.time(), claim.cell_id, claim.token),
            )
        return cursor.rowcount == 1

    # -- finishing -----------------------------------------------------
    def _finish(self, claim: Claim, assignments: str, values: tuple) -> None:
        with _wrapped("finish"):
            cursor = self._conn.execute(
                f"UPDATE cells SET {assignments}, finished_utc = ?, "
                f"claimed_by = NULL, claim_token = NULL, heartbeat = NULL "
                f"WHERE id = ? AND status = 'claimed' AND claim_token = ?",
                values + (utc_now(), claim.cell_id, claim.token),
            )
        if cursor.rowcount != 1:
            raise GridStateError(
                f"claim on cell {claim.cell_id} (grid {claim.grid!r}) was "
                f"expired and re-claimed while this worker ran it; "
                f"discarding this result — the new owner's run is "
                f"authoritative"
            )

    def finish_done(self, claim: Claim, result: dict, provenance: dict) -> None:
        """Record a successful cell; raises GridStateError on a stolen claim."""
        try:
            result_json = json.dumps(result)
        except (TypeError, ValueError) as exc:
            raise GridError(
                f"runner {claim.runner!r} returned a non-JSON-encodable "
                f"result for cell {claim.cell_id}: {exc}"
            ) from exc
        self._finish(
            claim,
            "status = 'done', result = ?, error_type = NULL, "
            "error_message = NULL, error_traceback = NULL, "
            + ", ".join(f"{col} = ?" for col in _PROVENANCE_COLUMNS),
            (result_json,) + tuple(provenance.get(col) for col in _PROVENANCE_COLUMNS),
        )

    def finish_error(self, claim: Claim, *, error_type: str, error_message: str,
                     error_traceback: str, provenance: dict) -> None:
        """Record a failed cell (typed error name + traceback kept)."""
        self._finish(
            claim,
            "status = 'error', error_type = ?, error_message = ?, "
            "error_traceback = ?, "
            + ", ".join(f"{col} = ?" for col in _PROVENANCE_COLUMNS),
            (error_type, error_message, error_traceback)
            + tuple(provenance.get(col) for col in _PROVENANCE_COLUMNS),
        )

    # -- external results (pytest-driven benchmark runs) ---------------
    def log_external(self, grid: str, runner: str, params: dict, result: dict,
                     *, provenance: dict, started_utc: str | None = None,
                     finished_utc: str | None = None) -> None:
        """Insert-or-update a finished cell produced outside a worker.

        The benchmarks ``record`` fixture uses this (when ``RITA_GRID_DB``
        is set) so pytest-driven runs and grid-driven runs share one
        provenance story; re-running a benchmark updates its cell.
        """
        self.ensure_grid(grid, runner)
        key = cell_key(params)
        now = utc_now()
        with _wrapped(f"log_external {grid!r}"):
            next_ordinal = self._conn.execute(
                "SELECT COALESCE(MAX(ordinal) + 1, 0) FROM cells WHERE grid = ?",
                (grid,),
            ).fetchone()[0]
            self._conn.execute(
                "INSERT INTO cells (grid, ordinal, cell_key, params, runner, "
                "status, attempts, started_utc, finished_utc, result, "
                + ", ".join(_PROVENANCE_COLUMNS) + ") "
                "VALUES (?, ?, ?, ?, ?, 'done', 1, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT (grid, cell_key) DO UPDATE SET "
                "status = 'done', attempts = attempts + 1, "
                "started_utc = excluded.started_utc, "
                "finished_utc = excluded.finished_utc, "
                "result = excluded.result, error_type = NULL, "
                "error_message = NULL, error_traceback = NULL, "
                + ", ".join(f"{col} = excluded.{col}" for col in _PROVENANCE_COLUMNS),
                (grid, next_ordinal, key, json.dumps(params), runner,
                 started_utc or now, finished_utc or now, json.dumps(result))
                + tuple(provenance.get(col) for col in _PROVENANCE_COLUMNS),
            )

    # -- queries -------------------------------------------------------
    def grid_names(self) -> list[str]:
        with _wrapped("grid_names"):
            rows = self._conn.execute("SELECT name FROM grids ORDER BY name").fetchall()
        return [row[0] for row in rows]

    def grid_runner(self, grid: str) -> str:
        with _wrapped("grid_runner"):
            row = self._conn.execute(
                "SELECT runner FROM grids WHERE name = ?", (grid,)
            ).fetchone()
        if row is None:
            raise GridError(f"no grid named {grid!r} in {self.path!r}")
        return row[0]

    def counts(self, grid: str | None = None) -> dict[str, dict[str, int]]:
        """Per-grid cell counts by status (all four statuses present)."""
        grid_clause = "WHERE grid = ?" if grid is not None else ""
        with _wrapped("counts"):
            rows = self._conn.execute(
                f"SELECT grid, status, COUNT(*) FROM cells {grid_clause} "
                f"GROUP BY grid, status ORDER BY grid",
                (grid,) if grid is not None else (),
            ).fetchall()
        out: dict[str, dict[str, int]] = {}
        for name, status, count in rows:
            out.setdefault(name, dict.fromkeys(STATUSES, 0))[status] = count
        if grid is not None and grid not in out and grid in self.grid_names():
            out[grid] = dict.fromkeys(STATUSES, 0)
        return out

    def cells(self, grid: str, status: str | None = None) -> list[CellRow]:
        """All cells of one grid in fill order (optionally one status)."""
        status_clause = "AND status = ?" if status is not None else ""
        with _wrapped(f"cells {grid!r}"):
            rows = self._conn.execute(
                f"SELECT {_CELL_COLUMNS} FROM cells WHERE grid = ? "
                f"{status_clause} ORDER BY ordinal",
                (grid, status) if status is not None else (grid,),
            ).fetchall()
        return [_row_to_cell(row) for row in rows]

    def reset_errors(self, grid: str | None = None) -> int:
        """Re-queue every errored cell; returns how many were reset."""
        grid_clause = "AND grid = ?" if grid is not None else ""
        with _wrapped("reset_errors"):
            cursor = self._conn.execute(
                f"UPDATE cells SET status = 'pending', result = NULL, "
                f"error_type = NULL, error_message = NULL, "
                f"error_traceback = NULL, claimed_by = NULL, "
                f"claim_token = NULL, heartbeat = NULL, started_utc = NULL, "
                f"finished_utc = NULL WHERE status = 'error' {grid_clause}",
                (grid,) if grid is not None else (),
            )
        return cursor.rowcount

    # -- portable dump / load ------------------------------------------
    def dump(self, grid: str | None = None) -> dict[str, Any]:
        """JSON-able snapshot of grids + cells (committed as fixtures)."""
        grids = [grid] if grid is not None else self.grid_names()
        if grid is not None and grid not in self.grid_names():
            raise GridError(f"no grid named {grid!r} in {self.path!r}")
        payload: dict[str, Any] = {"schema_version": SCHEMA_VERSION, "grids": []}
        for name in grids:
            with _wrapped(f"dump {name!r}"):
                runner, spec, created = self._conn.execute(
                    "SELECT runner, spec, created_utc FROM grids WHERE name = ?",
                    (name,),
                ).fetchone()
                cell_rows = self._conn.execute(
                    f"SELECT {_CELL_COLUMNS} FROM cells WHERE grid = ? "
                    f"ORDER BY ordinal",
                    (name,),
                ).fetchall()
            cells = []
            for row in cell_rows:
                cell = _row_to_cell(row)
                cells.append({
                    "ordinal": cell.ordinal,
                    "params": cell.params,
                    "runner": cell.runner,
                    "status": cell.status,
                    "attempts": cell.attempts,
                    "started_utc": cell.started_utc,
                    "finished_utc": cell.finished_utc,
                    "result": cell.result,
                    "error_type": cell.error_type,
                    "error_message": cell.error_message,
                    "error_traceback": cell.error_traceback,
                    "provenance": cell.provenance,
                })
            payload["grids"].append({
                "name": name, "runner": runner, "spec": spec,
                "created_utc": created, "cells": cells,
            })
        return payload

    def load(self, payload: dict) -> dict[str, int]:
        """Recreate grids from a :meth:`dump` payload (replace on conflict)."""
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise GridSchemaError(
                f"dump payload has schema_version {version!r}; this code "
                f"loads v{SCHEMA_VERSION}"
            )
        loaded: dict[str, int] = {}
        for grid in payload.get("grids", []):
            name, runner = grid["name"], grid["runner"]
            self.ensure_grid(name, runner, grid.get("spec"))
            with _wrapped(f"load {name!r}"):
                self._conn.execute("BEGIN IMMEDIATE")
                try:
                    for cell in grid["cells"]:
                        provenance = cell.get("provenance", {})
                        self._conn.execute(
                            "INSERT OR REPLACE INTO cells "
                            "(grid, ordinal, cell_key, params, runner, status, "
                            "attempts, started_utc, finished_utc, result, "
                            "error_type, error_message, error_traceback, "
                            + ", ".join(_PROVENANCE_COLUMNS) + ") VALUES "
                            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
                            "?, ?, ?, ?, ?, ?, ?)",
                            (name, cell["ordinal"], cell_key(cell["params"]),
                             json.dumps(cell["params"]), cell["runner"],
                             cell["status"], cell.get("attempts", 0),
                             cell.get("started_utc"), cell.get("finished_utc"),
                             json.dumps(cell["result"])
                             if cell.get("result") is not None else None,
                             cell.get("error_type"), cell.get("error_message"),
                             cell.get("error_traceback"))
                            + tuple(provenance.get(col) for col in _PROVENANCE_COLUMNS),
                        )
                    self._conn.execute("COMMIT")
                except BaseException:
                    self._conn.execute("ROLLBACK")
                    raise
            loaded[name] = len(grid["cells"])
        return loaded
