"""repro.experiments.grid — a sqlite-backed experiment database.

The fill → run → render loop (ROADMAP item 4):

* :mod:`~repro.experiments.grid.store` — grids and claimable cells in
  one SQLite file (WAL, versioned schema, CAS claiming, heartbeats,
  provenance as real columns);
* :mod:`~repro.experiments.grid.spec` — declarative parameter spaces
  expanded into deduplicated cells;
* :mod:`~repro.experiments.grid.worker` — resumable drain loops; N
  workers share one database, SIGKILL loses nothing;
* :mod:`~repro.experiments.grid.render` — regenerate
  ``benchmarks/results/*.txt`` and ``BENCH_*.json`` from a fully-done
  grid, byte-compatible with the pytest-driven originals;
* ``python -m repro.experiments.grid`` — the CLI over all of it.
"""

from repro.experiments.grid.provenance import capture, run_line, utc_now
from repro.experiments.grid.render import render_grid, renderable_grids
from repro.experiments.grid.runners import (
    available_runners,
    get_runner,
    load_runner_modules,
    register_runner,
)
from repro.experiments.grid.spec import SPEC_INDEX, GridSpec, spec_from_dict, spec_from_json
from repro.experiments.grid.store import (
    SCHEMA_VERSION,
    STATUSES,
    CellRow,
    Claim,
    FillReport,
    GridStore,
    cell_key,
)
from repro.experiments.grid.worker import WorkerConfig, WorkerReport, run_worker

__all__ = [
    "SCHEMA_VERSION",
    "STATUSES",
    "CellRow",
    "Claim",
    "FillReport",
    "GridSpec",
    "GridStore",
    "SPEC_INDEX",
    "WorkerConfig",
    "WorkerReport",
    "available_runners",
    "capture",
    "cell_key",
    "get_runner",
    "load_runner_modules",
    "register_runner",
    "render_grid",
    "renderable_grids",
    "run_line",
    "run_worker",
    "spec_from_dict",
    "spec_from_json",
    "utc_now",
]
