"""Run-environment provenance: captured per cell, rendered per file.

The benchmark suite has stamped every result artifact with a one-line
``# run:`` comment since PR 3; the grid database stores the same facts
as *real columns* so "which environment produced this number" is a SQL
query.  Both surfaces share the formatting here, which is what lets
:mod:`repro.experiments.grid.render` regenerate byte-identical files.
"""

from __future__ import annotations

import datetime
import os
import platform
import subprocess

import numpy as np

__all__ = ["ProvenanceFields", "capture", "run_line", "utc_now", "git_sha"]

#: The per-cell provenance columns, in schema order.
ProvenanceFields = (
    "platform",
    "python_version",
    "numpy_version",
    "cpu_count",
    "kernel_backend",
    "rita_seed",
    "git_sha",
)

_GIT_SHA: str | None = None
_GIT_SHA_RESOLVED = False


def utc_now() -> str:
    """Current UTC time in the stamp format used since PR 3."""
    return datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def git_sha() -> str | None:
    """HEAD commit of the working tree, or None outside a git checkout.

    Resolved once per process: the SHA cannot change mid-run, and a
    worker records it on every cell it finishes.
    """
    global _GIT_SHA, _GIT_SHA_RESOLVED
    if not _GIT_SHA_RESOLVED:
        _GIT_SHA_RESOLVED = True
        try:
            _GIT_SHA = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True, text=True, timeout=10, check=True,
            ).stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = None
    return _GIT_SHA


def capture(*, kernel_backend: str | None = None, rita_seed: int | None = None) -> dict:
    """Snapshot the environment fields stored on every finished cell."""
    if kernel_backend is None:
        import repro.kernels

        kernel_backend = repro.kernels.get_backend().name
    return {
        "platform": platform.platform(),
        "python_version": platform.python_version(),
        "numpy_version": np.__version__,
        "cpu_count": os.cpu_count(),
        "kernel_backend": kernel_backend,
        "rita_seed": rita_seed,
        "git_sha": git_sha(),
    }


def run_line(stamp: str, platform_str: str, python_version: str,
             numpy_version: str, cpu_count: int) -> str:
    """The ``# run:`` provenance line stamped on every rendered file.

    Must stay byte-identical to what ``benchmarks/conftest.py`` has
    written since PR 3 — the renderer and the pytest ``record`` fixture
    both delegate here.
    """
    return (
        f"# run: {stamp} · {platform_str} · "
        f"Python {python_version} · NumPy {numpy_version} · "
        f"{cpu_count} CPUs"
    )
