"""Cell runners: the functions a worker executes for one claimed cell.

A runner takes the cell's decoded ``params`` dict and returns a
JSON-encodable result dict.  Table-family runners return
``{"row": {...}}`` (one rendered table row); the ``bench_script``
wrapper returns ``{"payload": {...}}`` (a full ``BENCH_*.json``
payload).  Runners raise :class:`~repro.errors.ReproError` subclasses on
bad cells — the worker records the typed failure on the row, it never
crashes the drain loop.

Extra runners register via :func:`register_runner` from any module named
on the worker's ``runner_modules`` (CLI ``--runners``), which is how the
test suite injects crash/marker runners without touching library code.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import ConfigError, GridError
from repro.experiments.configs import BENCH, ExperimentScale

__all__ = [
    "register_runner",
    "get_runner",
    "available_runners",
    "load_runner_modules",
]

_RUNNERS: dict[str, Callable[[dict], dict]] = {}


def register_runner(name: str) -> Callable[[Callable[[dict], dict]], Callable[[dict], dict]]:
    """Decorator: register ``fn`` as the runner for cells named ``name``."""

    def decorate(fn: Callable[[dict], dict]) -> Callable[[dict], dict]:
        _RUNNERS[name] = fn
        return fn

    return decorate


def get_runner(name: str) -> Callable[[dict], dict]:
    try:
        return _RUNNERS[name]
    except KeyError:
        raise GridError(
            f"unknown cell runner {name!r}; available: "
            f"{sorted(_RUNNERS)} (pass --runners to load extra modules)"
        ) from None


def available_runners() -> list[str]:
    return sorted(_RUNNERS)


def load_runner_modules(names: tuple[str, ...] | list[str]) -> None:
    """Import extra modules whose import registers additional runners."""
    for name in names:
        try:
            importlib.import_module(name)
        except ImportError as exc:
            raise ConfigError(f"cannot import runner module {name!r}: {exc}") from exc


def _scale_from(params: dict) -> ExperimentScale:
    overrides = params.get("scale", {})
    if not isinstance(overrides, dict):
        raise ConfigError(
            f"cell 'scale' must be a dict of ExperimentScale overrides, "
            f"got {type(overrides).__name__}"
        )
    try:
        return BENCH.with_(**overrides)
    except TypeError as exc:
        raise ConfigError(f"bad ExperimentScale overrides {overrides!r}: {exc}") from exc


# ----------------------------------------------------------------------
# Built-in runners
# ----------------------------------------------------------------------
@register_runner("smoke_metric")
def run_smoke_metric(params: dict) -> dict:
    """Deterministic integer metric — identical bytes on every machine.

    CI renders this grid and diffs against a committed fixture, so the
    cell must not depend on wall-clock, platform, or float rounding:
    integer draws from a seeded PCG64 only.
    """
    n = int(params["n"])
    seed = int(params.get("seed", 0))
    draws = np.random.default_rng([seed, n]).integers(0, 1_000_000, size=n)
    return {"row": {
        "n": n,
        "seed": seed,
        "total": int(draws.sum()),
        "checksum": f"{int(draws[0]) ^ int(draws[-1]):06x}",
    }}


@register_runner("fig4_cell")
def run_fig4_cell(params: dict) -> dict:
    """One Figure-4 (varying MGH length) cell: a (length, method) pair."""
    from repro.experiments.runner import run_varying_length_cell

    row = run_varying_length_cell(
        int(params["paper_length"]), str(params["method"]),
        scale=_scale_from(params), seed=int(params.get("seed", 0)),
    )
    return {"row": row}


@register_runner("table4_cell")
def run_table4_cell(params: dict) -> dict:
    """One Table-4 scheduler arm: ``dynamic:<eps>`` or ``fixed:<N>``."""
    from repro.experiments.runner import run_scheduler_cell

    arm = str(params["arm"])
    kind, _, value = arm.partition(":")
    if kind == "dynamic":
        epsilon: float | None = float(value)
        n_groups = int(params["start_n"])
    elif kind == "fixed":
        epsilon = None
        n_groups = int(value)
    else:
        raise ConfigError(
            f"table4 arm must be 'dynamic:<eps>' or 'fixed:<N>', got {arm!r}"
        )
    row = run_scheduler_cell(
        str(params["dataset"]), str(params["task"]), _scale_from(params),
        n_groups=n_groups, epsilon=epsilon, seed=int(params.get("seed", 0)),
    )
    return {"row": row}


def _bench_dir() -> Path:
    """The benchmarks/ directory holding the bench_*.py sweep scripts."""
    override = os.environ.get("RITA_BENCH_DIR")
    if override:
        return Path(override)
    # src/repro/experiments/grid/runners.py -> repo root / benchmarks
    candidate = Path(__file__).resolve().parents[4] / "benchmarks"
    if candidate.is_dir():
        return candidate
    return Path.cwd() / "benchmarks"


@register_runner("bench_script")
def run_bench_script(params: dict) -> dict:
    """Thin wrapper over one ``benchmarks/bench_*.py`` sweep.

    Runs the script's ``main(argv)`` in-process (writing its JSON to a
    scratch path) and stores the returned payload as the cell result, so
    ``grid render`` can regenerate the ``BENCH_*.json`` file from the
    database alone.
    """
    import tempfile

    script = str(params["script"])
    if not script.replace("_", "").isalnum():
        raise ConfigError(f"bench script name {script!r} must be alphanumeric")
    path = _bench_dir() / f"{script}.py"
    if not path.is_file():
        raise GridError(f"bench script {str(path)!r} does not exist")
    module_spec = importlib.util.spec_from_file_location(f"_grid_{script}", path)
    if module_spec is None or module_spec.loader is None:
        raise GridError(f"cannot load bench script {str(path)!r}")
    module = importlib.util.module_from_spec(module_spec)
    module_spec.loader.exec_module(module)
    argv = list(params.get("args", []))
    with tempfile.TemporaryDirectory() as scratch:
        argv.insert(0, str(Path(scratch) / f"{script}.json"))
        if params.get("smoke", False):
            argv.append("--smoke")
        payload = module.main(argv)
    return {"payload": payload, "script": script, "smoke": bool(params.get("smoke", False))}
