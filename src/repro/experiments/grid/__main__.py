"""CLI: ``python -m repro.experiments.grid <command> ...``.

The fill → run → render loop over one SQLite experiment database::

    python -m repro.experiments.grid init      grid.db
    python -m repro.experiments.grid fill      grid.db smoke
    python -m repro.experiments.grid run       grid.db &   # N times
    python -m repro.experiments.grid status    grid.db
    python -m repro.experiments.grid render    grid.db smoke --results-dir benchmarks/results

Exit codes follow ``repro.analysis``: 0 on success, 1 when the command
surfaces failed cells (``status``/``run`` with errored cells), 2 on
usage errors or typed :class:`~repro.errors.ReproError` faults.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ConfigError, ReproError
from repro.serialize import atomic_write_text
from repro.experiments.grid.render import render_grid, renderable_grids
from repro.experiments.grid.spec import SPEC_INDEX, spec_from_json
from repro.experiments.grid.store import GridStore
from repro.experiments.grid.worker import WorkerConfig, run_worker


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.grid",
        description="SQLite-backed experiment grids: fill, run, render.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    init = sub.add_parser("init", help="create an empty grid database")
    init.add_argument("db")

    fill = sub.add_parser("fill", help="expand grid specs into pending cells")
    fill.add_argument("db")
    fill.add_argument("grids", nargs="*", metavar="grid",
                      help=f"built-in spec names (available: {sorted(SPEC_INDEX)})")
    fill.add_argument("--spec-file", action="append", default=[],
                      help="JSON GridSpec file (repeatable)")

    run = sub.add_parser("run", help="drain cells as one worker (resumable)")
    run.add_argument("db")
    run.add_argument("--grid", default=None, help="only this grid (default: all)")
    run.add_argument("--max-cells", type=int, default=None)
    run.add_argument("--worker-id", default=None)
    run.add_argument("--stale-after", type=float, default=300.0, metavar="SECONDS",
                     help="claims with no heartbeat for this long are re-claimable")
    run.add_argument("--heartbeat-interval", type=float, default=15.0, metavar="SECONDS")
    run.add_argument("--runners", action="append", default=[], metavar="MODULE",
                     help="extra module to import for registered runners (repeatable)")

    status = sub.add_parser("status", help="per-grid cell counts by status")
    status.add_argument("db")
    status.add_argument("--grid", default=None)
    status.add_argument("--errors", action="store_true",
                        help="also print each errored cell's type and message")

    render = sub.add_parser(
        "render", help="regenerate result artifacts from fully-done grids"
    )
    render.add_argument("db")
    render.add_argument("grids", nargs="+", metavar="grid",
                        help=f"grids to render (table families: {renderable_grids()})")
    render.add_argument("--results-dir", default="benchmarks/results")
    render.add_argument("--bench-dir", default=None,
                        help="where BENCH_*.json land (default: results-dir/..)")

    reset = sub.add_parser("reset-errors", help="re-queue every errored cell")
    reset.add_argument("db")
    reset.add_argument("--grid", default=None)

    dump = sub.add_parser("dump", help="JSON snapshot of grids + cells")
    dump.add_argument("db")
    dump.add_argument("--grid", default=None)
    dump.add_argument("-o", "--out", default=None, help="write here instead of stdout")

    load = sub.add_parser("load", help="recreate grids from a dump snapshot")
    load.add_argument("db")
    load.add_argument("dump_file")

    sub.add_parser("specs", help="list the built-in grid specs")
    return parser


def _cmd_fill(args: argparse.Namespace) -> int:
    specs = []
    for name in args.grids:
        if name not in SPEC_INDEX:
            raise ConfigError(
                f"unknown grid spec {name!r}; built-ins: {sorted(SPEC_INDEX)} "
                f"(or pass --spec-file)"
            )
        specs.append(SPEC_INDEX[name])
    for path in args.spec_file:
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ConfigError(f"cannot read spec file {path!r}: {exc}") from exc
        specs.append(spec_from_json(text))
    if not specs:
        raise ConfigError("fill needs at least one grid name or --spec-file")
    with GridStore(args.db) as store:
        for spec in specs:
            report = store.fill(spec.name, spec.runner, spec.cells(), spec.to_json())
            print(
                f"{report.grid}: {report.inserted} new cells, "
                f"{report.existing} already present"
            )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config_kwargs = dict(
        db_path=args.db,
        grid=args.grid,
        stale_after_s=args.stale_after,
        heartbeat_interval_s=args.heartbeat_interval,
        max_cells=args.max_cells,
        runner_modules=tuple(args.runners),
    )
    if args.worker_id:
        config_kwargs["worker_id"] = args.worker_id
    report = run_worker(WorkerConfig(**config_kwargs))
    print(
        f"worker {report.worker_id}: {report.done} done, "
        f"{report.errors} errored, {report.lost} lost to re-claims"
    )
    return 1 if report.errors else 0


def _cmd_status(args: argparse.Namespace) -> int:
    with GridStore(args.db) as store:
        counts = store.counts(args.grid)
        if args.grid is not None and args.grid not in store.grid_names():
            raise ConfigError(f"no grid named {args.grid!r} in {args.db!r}")
        total_errors = 0
        for grid in sorted(counts):
            tally = counts[grid]
            total = sum(tally.values())
            print(
                f"{grid}: {tally['done']}/{total} done, "
                f"{tally['pending']} pending, {tally['claimed']} claimed, "
                f"{tally['error']} error"
            )
            total_errors += tally["error"]
            if args.errors and tally["error"]:
                for cell in store.cells(grid, status="error"):
                    print(
                        f"  cell {cell.ordinal} {cell.cell_key}: "
                        f"{cell.error_type}: {cell.error_message}"
                    )
        if not counts:
            print("(no cells)")
    return 1 if total_errors else 0


def _cmd_render(args: argparse.Namespace) -> int:
    with GridStore(args.db) as store:
        for grid in args.grids:
            for path in render_grid(
                store, grid, results_dir=args.results_dir, bench_dir=args.bench_dir
            ):
                print(f"wrote {path}")
    return 0


def _cmd_reset_errors(args: argparse.Namespace) -> int:
    with GridStore(args.db) as store:
        count = store.reset_errors(args.grid)
    print(f"re-queued {count} errored cell(s)")
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    with GridStore(args.db) as store:
        payload = store.dump(args.grid)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        atomic_write_text(Path(args.out), text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    try:
        payload = json.loads(Path(args.dump_file).read_text())
    except OSError as exc:
        raise ConfigError(f"cannot read dump file {args.dump_file!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"dump file {args.dump_file!r} is not JSON: {exc}") from exc
    with GridStore(args.db) as store:
        loaded = store.load(payload)
    for grid, cells in sorted(loaded.items()):
        print(f"{grid}: loaded {cells} cell(s)")
    return 0


def _cmd_specs(_args: argparse.Namespace) -> int:
    for name in sorted(SPEC_INDEX):
        spec = SPEC_INDEX[name]
        print(f"{name}: {len(spec.cells())} cells via {spec.runner!r} — {spec.description}")
    return 0


_COMMANDS = {
    "fill": _cmd_fill,
    "run": _cmd_run,
    "status": _cmd_status,
    "render": _cmd_render,
    "reset-errors": _cmd_reset_errors,
    "dump": _cmd_dump,
    "load": _cmd_load,
    "specs": _cmd_specs,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "init":
            GridStore(args.db, create=True).close()
            print(f"initialized {args.db}")
            return 0
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
