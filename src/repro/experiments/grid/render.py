"""Regenerate result artifacts from the grid database — and only from it.

``render`` is the read side of the fill → run → render story: once a
grid is *fully done* (every cell ``done``, zero errors), its committed
artifacts — ``benchmarks/results/*.txt`` tables and ``BENCH_*.json``
payloads — are a pure function of the database.  The renderer therefore
refuses anything less:

* an unfinished or partially failed grid (``pending``/``claimed``/
  ``error`` cells) raises :class:`~repro.errors.GridStateError` — a
  result file must never mix fresh and missing numbers;
* a table grid whose cells ran on different machines or interpreter
  versions raises too (the ``# run:`` stamp would lie about half the
  rows; the mixed-run mosaic the stamp exists to expose).

Byte-compatibility is by construction, not by effort: tables go through
the same :func:`repro.experiments.tables.format_table` the benchmarks
print, the ``# run:`` line comes from the shared
:func:`repro.experiments.grid.provenance.run_line`, and ``BENCH_*.json``
files use the same ``json.dumps(payload, indent=2)`` the bench scripts
write.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.errors import GridError, GridStateError
from repro.serialize import atomic_write_text
from repro.experiments.grid.provenance import run_line
from repro.experiments.grid.store import CellRow, GridStore
from repro.experiments.tables import format_table

__all__ = ["render_grid", "renderable_grids", "PYTEST_RECORD_GRID", "PYTEST_RECORD_RUNNER"]

#: The grid/runner names the benchmarks ``record`` fixture logs into
#: when ``RITA_GRID_DB`` is set (see benchmarks/conftest.py).
PYTEST_RECORD_GRID = "pytest-benchmarks"
PYTEST_RECORD_RUNNER = "pytest-record"

_ENV_FIELDS = ("platform", "python_version", "numpy_version", "cpu_count")


def _rows(cells: list[CellRow], grid: str) -> list[dict]:
    rows = []
    for cell in cells:
        if not isinstance(cell.result, dict) or "row" not in cell.result:
            raise GridStateError(
                f"grid {grid!r} cell {cell.ordinal} has no 'row' in its "
                f"result; was it produced by a different runner?"
            )
        rows.append(cell.result["row"])
    return rows


# ----------------------------------------------------------------------
# Table families: grid name -> [(artifact_name, table_text), ...]
# Each must match its benchmarks/test_*.py twin byte-for-byte.
# ----------------------------------------------------------------------
def _render_smoke(cells: list[CellRow]) -> list[tuple[str, str]]:
    table = format_table(
        _rows(cells, "smoke"),
        columns=["n", "seed", "total", "checksum"],
        title="Grid smoke — deterministic integer metric",
    )
    return [("grid_smoke", table)]


def _render_fig4(cells: list[CellRow]) -> list[tuple[str, str]]:
    rows = _rows(cells, "fig4_varying_length")
    table = format_table(
        rows,
        columns=["paper_length", "method", "mse", "epoch_seconds", "note"],
        title="Figure 4 — varying MGH length (imputation)",
    )

    def rows_for(method: str) -> dict:
        return {r["paper_length"]: r for r in rows if r["method"] == method}

    vanilla = rows_for("Vanilla")
    group = rows_for("Group Attn.")
    try:
        speedup_2k = vanilla[2000]["epoch_seconds"] / group[2000]["epoch_seconds"]
        speedup_8k = vanilla[8000]["epoch_seconds"] / group[8000]["epoch_seconds"]
    except (KeyError, TypeError, ZeroDivisionError) as exc:
        raise GridStateError(
            f"fig4 grid is missing the Vanilla/Group rows at lengths "
            f"2000/8000 needed for the speedup summary: {exc}"
        ) from exc
    summary = [{
        "comparison": "Vanilla/Group epoch-time ratio @2000",
        "value": speedup_2k,
    }, {
        "comparison": "Vanilla/Group epoch-time ratio @8000 (paper's 63x point)",
        "value": speedup_8k,
    }]
    return [
        ("fig4_varying_length", table),
        ("fig4_speedup_summary", format_table(summary, title="Figure 4 — speedup summary")),
    ]


def _render_table4_ecg(cells: list[CellRow]) -> list[tuple[str, str]]:
    table = format_table(
        _rows(cells, "table4_scheduler_ecg"),
        columns=["scheduler", "parameter", "metric", "epoch_seconds", "final_groups"],
        title="Table 4 — adaptive vs fixed N (ECG classification, metric=accuracy)",
    )
    return [("table4_scheduler_ecg", table)]


_TABLE_FAMILIES: dict[str, Callable[[list[CellRow]], list[tuple[str, str]]]] = {
    "smoke": _render_smoke,
    "fig4_varying_length": _render_fig4,
    "table4_scheduler_ecg": _render_table4_ecg,
}


def renderable_grids() -> list[str]:
    """Grid names with a table family (bench/pytest grids render too)."""
    return sorted(_TABLE_FAMILIES)


# ----------------------------------------------------------------------
# Preconditions
# ----------------------------------------------------------------------
def _require_all_done(grid: str, cells: list[CellRow]) -> None:
    if not cells:
        raise GridStateError(f"grid {grid!r} has no cells; fill it first")
    unfinished = {c.status for c in cells} - {"done"}
    if unfinished:
        tally = {
            status: sum(c.status == status for c in cells)
            for status in sorted(unfinished)
        }
        raise GridStateError(
            f"grid {grid!r} is not fully done ({tally}); a rendered "
            f"artifact only ever comes from a fully passing grid — run "
            f"workers to completion (and 'reset-errors' + rerun any "
            f"failures) first"
        )


def _shared_environment(grid: str, cells: list[CellRow]) -> tuple:
    environments = {
        tuple(c.provenance.get(f) for f in _ENV_FIELDS) for c in cells
    }
    if len(environments) != 1:
        raise GridStateError(
            f"grid {grid!r} mixes cells from {len(environments)} different "
            f"environments; timings are only comparable within one run on "
            f"one machine — re-run the grid on a single machine before "
            f"rendering"
        )
    return next(iter(environments))


def _stamp(cells: list[CellRow]) -> str:
    stamps = [c.started_utc for c in cells if c.started_utc]
    if not stamps:
        raise GridStateError("grid cells carry no started_utc stamps")
    return min(stamps)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def render_grid(store: GridStore, grid: str, *, results_dir: str | Path,
                bench_dir: str | Path | None = None) -> list[Path]:
    """Write every artifact of one fully-done grid; returns the paths.

    Table grids write ``<results_dir>/<name>.txt`` (table + ``# run:``
    line); ``bench_script`` grids write ``BENCH_*.json`` into
    ``bench_dir`` (default: ``results_dir/..``); the pytest-record grid
    replays the exact text the ``record`` fixture persisted.
    """
    runner = store.grid_runner(grid)
    cells = store.cells(grid)
    _require_all_done(grid, cells)
    results_dir = Path(results_dir)
    bench_dir = Path(bench_dir) if bench_dir is not None else results_dir.parent
    written: list[Path] = []

    if runner == PYTEST_RECORD_RUNNER:
        # Each artifact came from its own pytest session: per-cell stamp.
        results_dir.mkdir(parents=True, exist_ok=True)
        for cell in cells:
            artifact = cell.params.get("artifact")
            text = (cell.result or {}).get("text")
            if not isinstance(artifact, str) or not isinstance(text, str):
                raise GridStateError(
                    f"grid {grid!r} cell {cell.ordinal} is not a pytest "
                    f"record (needs params.artifact and result.text)"
                )
            line = run_line(
                cell.started_utc or "", *(cell.provenance.get(f) for f in _ENV_FIELDS)
            )
            path = results_dir / f"{artifact}.txt"
            atomic_write_text(path, text + "\n" + line + "\n")
            written.append(path)
        return written

    if runner == "bench_script":
        bench_dir.mkdir(parents=True, exist_ok=True)
        for cell in cells:
            result = cell.result or {}
            payload, script = result.get("payload"), result.get("script")
            if not isinstance(payload, dict) or not isinstance(script, str):
                raise GridStateError(
                    f"grid {grid!r} cell {cell.ordinal} has no bench "
                    f"payload; was it produced by the bench_script runner?"
                )
            import json

            name = script.removeprefix("bench_")
            suffix = "_smoke" if result.get("smoke") else ""
            path = bench_dir / f"BENCH_{name}{suffix}.json"
            atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
            written.append(path)
        return written

    family = _TABLE_FAMILIES.get(grid)
    if family is None:
        raise GridError(
            f"no renderer for grid {grid!r} (runner {runner!r}); known "
            f"table families: {renderable_grids()}, plus the "
            f"'bench_script' and {PYTEST_RECORD_RUNNER!r} runners"
        )
    environment = _shared_environment(grid, cells)
    line = run_line(_stamp(cells), *environment)
    results_dir.mkdir(parents=True, exist_ok=True)
    for artifact, table in family(cells):
        path = results_dir / f"{artifact}.txt"
        atomic_write_text(path, table + "\n" + line + "\n")
        written.append(path)
    return written
