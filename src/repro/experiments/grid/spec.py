"""Declarative grid definitions: parameter spaces expanded into cells.

A :class:`GridSpec` is a runner name plus an ordered mapping of axes;
expansion is the cartesian product of the axes (last axis fastest,
like nested for-loops), each cell merged over the shared ``base``
parameters.  Cells are keyed by their canonical parameter JSON
(:func:`repro.experiments.grid.store.cell_key`), so re-filling an
existing table only appends cells that are genuinely new.

``SPEC_INDEX`` holds the built-in grids: the result families the
benchmark suite regenerates (fig4 varying-length, table4 scheduler),
the ROADMAP sweeps this subsystem exists for (serving rate sweep,
thread-count sweep via the ``bench_script`` wrapper), and a
deterministic 2-cell ``smoke`` grid exercised end-to-end by CI.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = ["GridSpec", "SPEC_INDEX", "spec_from_dict", "spec_from_json"]


@dataclass(frozen=True)
class GridSpec:
    """One declarative parameter space.

    ``axes`` values vary per cell; ``base`` is merged into every cell
    (axes win on key collisions — that would hide a config mistake, so
    collisions are rejected instead).
    """

    name: str
    runner: str
    axes: dict[str, tuple] = field(default_factory=dict)
    base: dict = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.runner:
            raise ConfigError("GridSpec needs a non-empty name and runner")
        overlap = set(self.axes) & set(self.base)
        if overlap:
            raise ConfigError(
                f"grid {self.name!r}: axes and base share keys {sorted(overlap)}; "
                f"a parameter is either swept or fixed, not both"
            )
        for axis, values in self.axes.items():
            if len(values) == 0:
                raise ConfigError(
                    f"grid {self.name!r}: axis {axis!r} has no values"
                )
            if len(set(map(repr, values))) != len(values):
                raise ConfigError(
                    f"grid {self.name!r}: axis {axis!r} repeats a value"
                )

    def cells(self) -> list[dict]:
        """Expand to one params dict per cell, in deterministic order."""
        axis_names = list(self.axes)
        expanded = []
        for combo in itertools.product(*(self.axes[a] for a in axis_names)):
            params = dict(self.base)
            params.update(zip(axis_names, combo))
            expanded.append(params)
        return expanded

    def to_json(self) -> str:
        """Canonical JSON of the spec, stored on the grid row."""
        return json.dumps(
            {
                "name": self.name,
                "runner": self.runner,
                "axes": {axis: list(vals) for axis, vals in self.axes.items()},
                "base": self.base,
                "description": self.description,
            },
            sort_keys=True,
        )


def spec_from_dict(payload: dict) -> GridSpec:
    """Build a spec from a plain dict (e.g. a ``--spec-file`` JSON)."""
    if not isinstance(payload, dict):
        raise ConfigError(f"grid spec must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - {"name", "runner", "axes", "base", "description"}
    if unknown:
        raise ConfigError(f"grid spec has unknown keys {sorted(unknown)}")
    try:
        axes = {
            str(axis): tuple(values)
            for axis, values in payload.get("axes", {}).items()
        }
    except TypeError as exc:
        raise ConfigError(f"grid spec axes must map names to lists: {exc}") from exc
    return GridSpec(
        name=payload.get("name", ""),
        runner=payload.get("runner", ""),
        axes=axes,
        base=dict(payload.get("base", {})),
        description=str(payload.get("description", "")),
    )


def spec_from_json(text: str) -> GridSpec:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"grid spec is not valid JSON: {exc}") from exc
    return spec_from_dict(payload)


# ----------------------------------------------------------------------
# Built-in grids
# ----------------------------------------------------------------------
#: Scale overrides matching benchmarks/test_fig4_varying_length.py.
_FIG4_SCALE = {"epochs": 8, "size_scale": 0.004, "length_scale": 0.25, "lr": 3e-3}
#: Scale overrides matching benchmarks/test_table4_scheduler.py (ECG arm).
_TABLE4_ECG_SCALE = {"epochs": 3, "size_scale": 0.003, "length_scale": 0.2, "lr": 2e-3}

SPEC_INDEX: dict[str, GridSpec] = {
    spec.name: spec
    for spec in (
        GridSpec(
            name="smoke",
            runner="smoke_metric",
            axes={"n": (32, 64)},
            base={"seed": 2024},
            description=(
                "2-cell deterministic integer metric; CI runs this grid "
                "end-to-end (fill → 2 workers → render → diff fixtures)"
            ),
        ),
        GridSpec(
            name="fig4_varying_length",
            runner="fig4_cell",
            axes={
                "paper_length": (2000, 4000, 6000, 8000, 10000),
                "method": ("vanilla", "performer", "linformer", "group"),
            },
            base={"seed": 29, "scale": _FIG4_SCALE},
            description=(
                "Figure 4 (MGH varying length, imputation): one cell per "
                "(length, method) — the family benchmarks/test_fig4_varying_"
                "length.py runs serially"
            ),
        ),
        GridSpec(
            name="table4_scheduler_ecg",
            runner="table4_cell",
            axes={
                "arm": (
                    "dynamic:1.5", "dynamic:2.0", "dynamic:3.0",
                    "fixed:4", "fixed:16", "fixed:64",
                ),
            },
            base={
                "dataset": "ecg", "task": "classification", "seed": 17,
                "start_n": 64, "scale": _TABLE4_ECG_SCALE,
            },
            description=(
                "Table 4 (adaptive scheduler vs fixed N, ECG classification): "
                "one cell per scheduler arm"
            ),
        ),
        GridSpec(
            name="serving_rate_sweep",
            runner="bench_script",
            axes={"script": ("bench_serving",)},
            base={"smoke": True},
            description=(
                "Serving benchmark via the bench_script wrapper (smoke "
                "geometry); swap smoke=False for the full sweep"
            ),
        ),
        GridSpec(
            name="thread_sweep",
            runner="bench_script",
            axes={"script": ("bench_parallel",)},
            base={"smoke": True},
            description=(
                "Parallel-dispatch thread sweep via the bench_script "
                "wrapper; run on a multicore machine for real scaling "
                "(ROADMAP item 3)"
            ),
        ),
    )
}
