"""Experiment scales and method factories.

The paper's evaluation trains the reference architecture (8 layers, 2
heads, 64-dim) for 100 epochs on datasets of 20k-31k series on a V100.
That is far beyond a CPU NumPy engine, so experiments run at a *scale*:
a named bundle of size/length/epoch factors.  All methods share a scale,
so every ratio the paper reports (who wins, how speedups grow with
length) is preserved.

``METHODS`` lists the five compared systems: TST plus the RITA
architecture with each attention mechanism (Vanilla / Performer /
Linformer / Group Attn.) — exactly the lineup of Sec. 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines.tst import TSTConfig, TSTModel
from repro.data.registry import DatasetBundle
from repro.model.config import RitaConfig
from repro.model.rita import RitaModel

__all__ = ["ExperimentScale", "SMOKE", "BENCH", "METHODS", "build_model", "method_display_name"]


@dataclass(frozen=True)
class ExperimentScale:
    """One named experiment geometry."""

    name: str
    size_scale: float
    length_scale: float
    epochs: int
    batch_size: int
    dim: int = 32
    n_layers: int = 2
    n_heads: int = 2
    n_groups: int = 16
    performer_features: int = 32
    linformer_proj_dim: int = 16
    dropout: float = 0.1
    lr: float = 1e-3
    finetune_per_class: int = 8
    pretrain_epochs: int = 3
    #: Scale for the unlabeled pretraining pool; defaults to ``size_scale``.
    #: ECG's paper pool is 561k series, so benches cap it separately.
    pretrain_size_scale: float | None = None

    def with_(self, **overrides) -> "ExperimentScale":
        return replace(self, **overrides)


#: Scale used by unit/integration tests: seconds, not minutes.
SMOKE = ExperimentScale(
    name="smoke", size_scale=0.002, length_scale=0.25,
    epochs=2, batch_size=16, dropout=0.0,
)

#: Scale used by the benchmark suite: minutes for the full set.
BENCH = ExperimentScale(
    name="bench", size_scale=0.006, length_scale=0.25,
    epochs=4, batch_size=16, dropout=0.0,
)

#: The five compared methods of the paper's evaluation.
METHODS = ["tst", "vanilla", "performer", "linformer", "group"]

_DISPLAY = {
    "tst": "TST",
    "vanilla": "Vanilla",
    "performer": "Performer",
    "linformer": "Linformer",
    "group": "Group Attn.",
}


def method_display_name(method: str) -> str:
    """Paper-style method label."""
    return _DISPLAY.get(method, method)


def build_model(
    method: str,
    bundle: DatasetBundle,
    scale: ExperimentScale,
    rng: np.random.Generator,
    with_classifier: bool = True,
    n_groups: int | None = None,
):
    """Construct the model for one method at the given scale.

    ``method == "tst"`` builds the TST baseline; anything else builds the
    RITA architecture with that attention mechanism, matching how the
    paper swaps mechanisms inside one framework.
    """
    n_classes = bundle.n_classes if with_classifier else None
    if method == "tst":
        config = TSTConfig(
            input_channels=bundle.channels,
            max_len=bundle.length,
            dim=scale.dim,
            n_heads=scale.n_heads,
            n_layers=scale.n_layers,
            dropout=scale.dropout,
            n_classes=n_classes,
        )
        return TSTModel(config, rng=rng)
    config = RitaConfig(
        input_channels=bundle.channels,
        max_len=bundle.length,
        dim=scale.dim,
        n_heads=scale.n_heads,
        n_layers=scale.n_layers,
        attention=method,
        n_groups=n_groups if n_groups is not None else scale.n_groups,
        performer_features=scale.performer_features,
        linformer_proj_dim=scale.linformer_proj_dim,
        dropout=scale.dropout,
        n_classes=n_classes,
    )
    return RitaModel(config, rng=rng)
