"""Command-line experiment runner.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig3 --dataset hhar
    python -m repro.experiments table2 --dataset mgh
    python -m repro.experiments fig4
    python -m repro.experiments fig5
    python -m repro.experiments table4 --dataset ecg --task classification
    python -m repro.experiments table5

Runs one paper experiment at the benchmark scale and prints the table in
the paper's layout.  The full suite (with assertions and persisted
results) lives in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    BENCH,
    EXPERIMENT_INDEX,
    format_table,
    run_classification,
    run_grail_comparison,
    run_imputation,
    run_inference_time,
    run_pretrain_finetune,
    run_pretrain_size_ablation,
    run_scheduler_ablation,
    run_varying_length,
)
from repro.data.registry import table1_rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one of the paper's tables/figures at bench scale.",
    )
    parser.add_argument("experiment", nargs="?", help="experiment id, e.g. fig3, table2")
    parser.add_argument("--list", action="store_true", help="list all experiments")
    parser.add_argument("--dataset", default="hhar", help="dataset registry key")
    parser.add_argument("--task", default="classification",
                        choices=["classification", "imputation"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        rows = [
            {"id": key, "paper": e.experiment_id, "description": e.description,
             "bench": e.bench_target}
            for key, e in EXPERIMENT_INDEX.items()
        ]
        print(format_table(rows, title="Experiment index"))
        return 0

    experiment = args.experiment.lower()
    if experiment == "table1":
        print(format_table(table1_rows(), title="Table 1 (paper-scale spec)"))
    elif experiment == "fig3":
        rows = run_classification(args.dataset, scale=BENCH, seed=args.seed)
        print(format_table(rows, title=f"Figure 3 ({args.dataset})"))
    elif experiment == "table2":
        rows = run_imputation(args.dataset, scale=BENCH, seed=args.seed)
        print(format_table(rows, title=f"Table 2 ({args.dataset})"))
    elif experiment == "table3":
        rows = run_pretrain_finetune(args.dataset, scale=BENCH, seed=args.seed)
        print(format_table(rows, title=f"Table 3 ({args.dataset})"))
    elif experiment == "table4":
        rows = run_scheduler_ablation(args.dataset, args.task, scale=BENCH, seed=args.seed)
        print(format_table(rows, title=f"Table 4 ({args.dataset}, {args.task})"))
    elif experiment == "table5":
        rows = run_pretrain_size_ablation(scale=BENCH, seed=args.seed)
        print(format_table(rows, title="Table 5 (WISDM)"))
    elif experiment == "fig4":
        rows = run_varying_length(scale=BENCH, seed=args.seed)
        print(format_table(rows, title="Figure 4 (MGH, varying length)"))
    elif experiment == "fig5":
        rows = run_grail_comparison(scale=BENCH, seed=args.seed)
        print(format_table(rows, title="Figure 5 (GRAIL comparison)"))
    elif experiment in ("table6", "table7"):
        kind = "classification" if experiment == "table6" else "imputation"
        rows = run_inference_time(args.dataset, kind, scale=BENCH, seed=args.seed)
        print(format_table(rows, title=f"{experiment} ({args.dataset}, {kind})"))
    else:
        print(f"unknown experiment {experiment!r}; use --list", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
