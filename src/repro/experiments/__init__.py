"""Experiment harness: scales, method factories, per-table runners, rendering."""

from repro.experiments.configs import (
    BENCH,
    METHODS,
    SMOKE,
    ExperimentScale,
    build_model,
    method_display_name,
)
from repro.experiments.runner import (
    paper_scale_oom,
    run_classification,
    run_grail_comparison,
    run_imputation,
    run_inference_time,
    run_pretrain_finetune,
    run_pretrain_size_ablation,
    run_scheduler_ablation,
    run_varying_length,
)
from repro.experiments.tables import EXPERIMENT_INDEX, ExperimentEntry, format_table

__all__ = [
    "BENCH",
    "METHODS",
    "SMOKE",
    "ExperimentScale",
    "build_model",
    "method_display_name",
    "paper_scale_oom",
    "run_classification",
    "run_grail_comparison",
    "run_imputation",
    "run_inference_time",
    "run_pretrain_finetune",
    "run_pretrain_size_ablation",
    "run_scheduler_ablation",
    "run_varying_length",
    "EXPERIMENT_INDEX",
    "ExperimentEntry",
    "format_table",
]
