"""Durability benchmark: crash-consistent checkpoints and self-healing training.

Three measurements, all against the PR's acceptance claims:

* **crash matrix** — supervised training runs under pinned kill/fault
  plans (SIGKILL before/after the checkpoint save, torn write mid-save,
  dropped fsync + crash after rename).  Reported per plan: restarts,
  failure reasons, wall time, and ``final_bitwise_equal`` — whether the
  recovered run's final weights are bitwise-identical to the
  uninterrupted baseline's (acceptance: all true, ``kills_survived ==
  plans``).
* **integrity accounting** — a long checkpoint series under seeded
  :class:`~repro.faultfs.FaultSchedule` sweeps.  Reported:
  ``verified_loads``, ``integrity_rejections`` (torn/corrupt primaries
  refused by the digest), ``backup_fallbacks`` (``.bak`` saved the
  state), and ``corrupt_accepted`` (acceptance: **zero** — no fault
  schedule may ever yield an accepted-but-corrupt file).
* **write overhead** — ``atomic_savez`` (temp file + digest + fsync +
  rename + dir fsync) vs a raw in-place ``np.savez``, so the cost of
  crash consistency is a recorded number instead of folklore.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_durability.py [out.json] [--smoke]

Emits ``benchmarks/BENCH_durability.json`` by default.  ``--smoke`` runs
a tiny geometry (seconds, exercised by CI) so the script cannot rot.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import bench_meta, emit_payload, parse_bench_args

from repro.data import ArrayDataset
from repro.errors import IntegrityError
from repro.faultfs import FaultSchedule, SimulatedCrash, fault_scope
from repro.model import RitaConfig, RitaModel
from repro.optim import AdamW, LinearWarmup
from repro.serialize import atomic_savez, read_verified, read_with_backup
from repro.tasks import ClassificationTask
from repro.train import Supervisor, TrainingRecipe, TrainPlan, load_checkpoint

FAULT_SEED = 2024  #: pinned sweep seed (see EXPERIMENTS.md)


def build_model(seed: int = 0) -> RitaModel:
    config = RitaConfig(
        input_channels=2, max_len=16, dim=16, n_layers=1, n_heads=2,
        attention="vanilla", dropout=0.0, n_classes=2,
    )
    return RitaModel(config, rng=np.random.default_rng(seed))


def recipe_factory() -> TrainingRecipe:
    """Module-level (picklable) deterministic recipe for the supervisor."""
    model = build_model()
    optimizer = AdamW(model.parameters(), lr=1e-3)
    scheduler = LinearWarmup(optimizer, warmup_epochs=4)
    rng = np.random.default_rng(123)
    dataset = ArrayDataset(x=rng.random((16, 16, 2)), y=rng.integers(0, 2, 16))
    return TrainingRecipe(
        model=model, task=ClassificationTask(), optimizer=optimizer,
        dataset=dataset, scheduler=scheduler, batch_size=8,
    )


def crash_plans(epochs: int) -> dict[str, TrainPlan]:
    """The pinned kill/fault matrix; every plan costs >= 1 generation."""
    return {
        "sigkill_before_first_save": TrainPlan(
            kill_after_epoch={0: (0, "before_save")}),
        "sigkill_after_save": TrainPlan(
            kill_after_epoch={0: (0, "after_save")}),
        "sigkill_last_epoch": TrainPlan(
            kill_after_epoch={0: (epochs - 1, "before_save")}),
        "sigkill_twice": TrainPlan(
            kill_after_epoch={0: (0, "before_save"), 1: (1, "after_save")}),
        "torn_write_mid_save": TrainPlan(
            fault_schedules={0: FaultSchedule(torn_write_at={1: 0.5})}),
        "dropped_fsync_crash_after_rename": TrainPlan(
            fault_schedules={0: FaultSchedule(drop_fsync_at=(2,),
                                              crash_at_rename={1: "after"})}),
    }


def final_weights(checkpoint_path) -> dict[str, np.ndarray]:
    model = build_model(seed=999)  # deliberately different init
    load_checkpoint(model, checkpoint_path)
    return {name: np.array(p.data) for name, p in model.named_parameters()}


def run_crash_matrix(*, epochs: int, scratch: Path) -> dict:
    def supervise(plan, name):
        return Supervisor(
            recipe_factory, epochs=epochs, checkpoint_dir=scratch / name,
            heartbeat_timeout=60.0, max_restarts=6,
            backoff_base=0.01, backoff_cap=0.05, plan=plan,
        ).run()

    t0 = time.monotonic()
    baseline = supervise(None, "baseline")
    baseline_wall = time.monotonic() - t0
    reference = final_weights(baseline.final_checkpoint)

    runs = {}
    survived = 0
    for name, plan in crash_plans(epochs).items():
        t0 = time.monotonic()
        result = supervise(plan, name)
        wall = time.monotonic() - t0
        weights = final_weights(result.final_checkpoint)
        bitwise = (
            weights.keys() == reference.keys()
            and all(np.array_equal(weights[k], reference[k]) for k in reference)
        )
        survived += bool(bitwise and result.epochs == epochs)
        runs[name] = {
            "restarts": result.restarts,
            "reasons": [event["reason"] for event in result.events],
            "epochs": result.epochs,
            "wall_seconds": wall,
            "final_loss": result.final_loss,
            "final_bitwise_equal": bool(bitwise),
        }
    return {
        "epochs": epochs,
        "baseline_wall_seconds": baseline_wall,
        "baseline_final_loss": baseline.final_loss,
        "plans": len(runs),
        "kills_survived": survived,
        "runs": runs,
    }


def run_integrity_sweep(*, attempts: int, scratch: Path) -> dict:
    """A checkpoint series under rolling filesystem faults, with receipts."""
    def payload(version: float) -> dict:
        return {"weights": np.full((64, 64), version), "version": np.asarray(version)}

    path = atomic_savez(scratch / "series", payload(0.0))
    written = {0.0}
    saves_ok = saves_failed = 0
    verified_loads = integrity_rejections = backup_fallbacks = corrupt_accepted = 0
    primary_ok = True
    for attempt in range(1, attempts + 1):
        if attempt % 7 == 3 and primary_ok:
            # A deterministic torn publish: rename lands, content does
            # not.  The digest must refuse the primary and the reader
            # must fall back to ``.bak``.  Only injected while the
            # primary verifies — ``make_backup`` rotates the *current*
            # primary into ``.bak``, so tearing a second publish on top
            # of an already-torn one is the double-crash that loses both
            # copies (a documented limit of one-deep backup rotation).
            schedule = FaultSchedule(drop_fsync_at=(0,), crash_at_rename={0: "after"})
        else:
            schedule = FaultSchedule(
                seed=FAULT_SEED + attempt,
                torn_write_rate=0.5, drop_fsync_rate=0.5, enospc_rate=0.2,
            )
        try:
            with fault_scope(schedule):
                atomic_savez(path, payload(float(attempt)), make_backup=True)
            saves_ok += 1
            written.add(float(attempt))
        except (SimulatedCrash, OSError):
            saves_failed += 1
        # Was the primary refused by the digest?
        try:
            read_verified(path, what="series bundle")
            primary_ok = True
        except IntegrityError:
            integrity_rejections += 1
            primary_ok = False
        # Whatever happened, read what a restart would read.
        got, used_backup = read_with_backup(path)
        verified_loads += 1
        backup_fallbacks += used_backup
        version = float(got["version"])
        if version not in written or not np.array_equal(
            got["weights"], np.full((64, 64), version)
        ):
            corrupt_accepted += 1
    return {
        "attempts": attempts,
        "fault_rates": {"torn_write": 0.5, "drop_fsync": 0.5, "enospc": 0.2},
        "saves_ok": saves_ok,
        "saves_failed": saves_failed,
        "verified_loads": verified_loads,
        "integrity_rejections": integrity_rejections,
        "backup_fallbacks": backup_fallbacks,
        "corrupt_accepted": corrupt_accepted,
    }


def run_write_overhead(*, mb: float, repeats: int, scratch: Path) -> dict:
    rng = np.random.default_rng(0)
    n = int(mb * 1e6 / 8 / 4)
    payload = {f"block_{i}": rng.standard_normal(n) for i in range(4)}

    def timed(save, name):
        times = []
        for rep in range(repeats):
            target = scratch / f"{name}_{rep}.npz"
            t0 = time.perf_counter()
            save(target)
            times.append(time.perf_counter() - t0)
            target.unlink()
        return float(np.median(times))

    atomic_s = timed(lambda p: atomic_savez(p, payload), "atomic")
    raw_s = timed(
        lambda p: np.savez(p, **payload),  # repro: allow[durable-io] - the baseline being measured
        "raw",
    )
    return {
        "payload_mb": mb,
        "repeats": repeats,
        "atomic_savez_seconds": atomic_s,
        "raw_np_savez_seconds": raw_s,
        "overhead_ratio": atomic_s / raw_s if raw_s else None,
    }


def main(argv: list[str] | None = None) -> dict:
    args = parse_bench_args(__doc__, argv)
    epochs = 3 if args.smoke else 6
    attempts = 20 if args.smoke else 200
    mb = 0.5 if args.smoke else 8.0
    repeats = 3 if args.smoke else 9

    scratch = Path(tempfile.mkdtemp(prefix="bench_durability_"))
    try:
        crash_matrix = run_crash_matrix(epochs=epochs, scratch=scratch)
        integrity = run_integrity_sweep(attempts=attempts, scratch=scratch)
        overhead = run_write_overhead(mb=mb, repeats=repeats, scratch=scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    payload = {
        "meta": bench_meta(smoke=args.smoke, fault_seed=FAULT_SEED),
        "acceptance": {
            "all_plans_bitwise_equal": (
                crash_matrix["kills_survived"] == crash_matrix["plans"]
            ),
            "corrupt_accepted_is_zero": integrity["corrupt_accepted"] == 0,
        },
        "crash_matrix": crash_matrix,
        "integrity": integrity,
        "write_overhead": overhead,
    }
    emit_payload(payload, "durability", args.out, smoke=args.smoke)
    if not payload["acceptance"]["all_plans_bitwise_equal"]:
        raise SystemExit("ACCEPTANCE FAILURE: a crash plan did not recover bitwise")
    if not payload["acceptance"]["corrupt_accepted_is_zero"]:
        raise SystemExit("ACCEPTANCE FAILURE: a fault schedule produced accepted corruption")
    return payload


if __name__ == "__main__":
    main()
