"""Table 1: dataset statistics.

Regenerates the corpus statistics table at paper scale (spec values) and
at the benchmark scale actually used by the other experiments, verifying
the generated data matches the registry's promises.
"""

import pytest

#: Full-experiment benchmark: excluded from the fast tier (-m 'not slow').
pytestmark = pytest.mark.slow

import numpy as np

from repro.data import DATASETS, load_dataset, table1_rows
from repro.experiments import BENCH, format_table

from conftest import run_once


def test_table1_dataset_statistics(benchmark, record):
    def run():
        paper = table1_rows()
        scaled = table1_rows(size_scale=BENCH.size_scale, length_scale=BENCH.length_scale)
        # Materialize one scaled dataset per spec and verify its shape.
        checks = []
        for name in ["wisdm", "hhar", "rwhar", "ecg", "mgh"]:
            bundle = load_dataset(
                name, size_scale=0.002, length_scale=0.1,
                rng=np.random.default_rng(0),
            )
            spec = DATASETS[name]
            sample = bundle.train[0]["x"]
            assert sample.shape[1] == spec.channels
            if spec.labeled:
                labels = bundle.train.arrays["y"]
                assert labels.max() < spec.n_classes
            checks.append({
                "dataset": name.upper(),
                "generated_train": len(bundle.train),
                "generated_valid": len(bundle.valid),
                "generated_length": bundle.length,
                "channels": sample.shape[1],
            })
        return paper, scaled, checks

    paper, scaled, checks = run_once(benchmark, run)
    text = "\n\n".join([
        format_table(paper, title="Table 1 (paper-scale spec)"),
        format_table(scaled, title=f"Table 1 (bench scale: size x{BENCH.size_scale}, length x{BENCH.length_scale})"),
        format_table(checks, title="Generated corpus verification"),
    ])
    record("table1_datasets", text)
    # Shape assertions on the paper-scale spec.
    by_name = {r["dataset"]: r for r in paper}
    assert by_name["MGH"]["length"] == 10000
    assert by_name["ECG"]["length"] == 2000
    assert by_name["WISDM"]["length"] == 200
