"""Kernel-layer micro-benchmark: the perf trajectory file for future PRs.

Measures, on this machine:

1. **Group-attention forward+backward at n=1024** — the pre-refactor
   baseline (the exact op composition the repo shipped before the kernel
   layer: per-op autograd closures, ``np.add.at`` segment sum, float64)
   against the refactored path (fused group-softmax kernel, sort+reduceat
   segment sum, float32).  The acceptance bar is >= 2x.
2. **Tokens/sec, vanilla vs. group attention** at n in {256, 1024, 4096},
   both dtypes, forward-only under ``no_grad`` (the inference fast path).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_kernels.py [out.json] [--smoke]

Emits ``benchmarks/BENCH_kernels.json`` by default.  ``--smoke`` runs a
tiny geometry (seconds, exercised by CI) so the script cannot rot.
Numbers are wall-clock on whatever machine runs this, so compare ratios,
not absolute seconds, across machines.
"""

from __future__ import annotations

import math
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import bench_meta, emit_payload, parse_bench_args

import repro.kernels as K
from repro.attention.group import GroupAttention
from repro.attention.vanilla import VanillaAttention
from repro.autograd import ops
from repro.autograd.tensor import Tensor, no_grad
from repro.cluster.kmeans import batched_kmeans

BATCH = 2
HEADS = 4
HEAD_DIM = 32
N_GROUPS = 64
TARGET_SPEEDUP = 2.0


def _time(fn, *, repeats: int, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    for _ in range(warmup):
        fn()
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _qkv(n: int, dtype, seed: int = 0):
    rng = np.random.default_rng(seed)
    shape = (BATCH, HEADS, n, HEAD_DIM)
    return tuple(rng.standard_normal(shape).astype(dtype) for _ in range(3))


def _grouping(k: np.ndarray, n_groups: int):
    """One clustering, shared by both paths so only attention math differs."""
    batch, heads, n, d_k = k.shape
    result = batched_kmeans(
        k.reshape(batch * heads, n, d_k), n_groups, n_iters=2,
        rng=np.random.default_rng(1),
    )
    ids = result.assignments.reshape(batch, heads, n)
    counts = result.counts.reshape(batch, heads, result.n_clusters)
    return ids, counts, result.n_clusters


# ----------------------------------------------------------------------
# Path A: the pre-refactor composition (what the repo shipped before the
# kernel layer).  Group softmax as five recorded autograd ops; segment
# sums on the np.add.at reference kernels; float64 throughout.
# ----------------------------------------------------------------------
def _legacy_group_attention(q, k, v, ids, counts, n_groups) -> Tensor:
    d_k = q.shape[-1]
    counts = counts.astype(np.float64)
    key_sums = ops.batched_segment_sum(k, ids, n_groups)
    safe_counts = np.maximum(counts, 1.0)[..., None]
    representatives = key_sums / safe_counts
    scores = (q @ representatives.swapaxes(-1, -2)) * (1.0 / math.sqrt(d_k))
    shift = scores.data.max(axis=-1, keepdims=True)
    exp_scores = (scores - Tensor(shift)).exp()
    weighted = exp_scores * Tensor(counts[:, :, None, :])
    denom = weighted.sum(axis=-1, keepdims=True)
    attn = exp_scores / denom
    v_agg = ops.batched_segment_sum(v, ids, n_groups)
    return attn @ v_agg


# ----------------------------------------------------------------------
# Path B: the refactored kernel path (fused group softmax, fused segment
# sum) — what GroupAttention.forward now executes.
# ----------------------------------------------------------------------
def _fused_group_attention(q, k, v, ids, counts, n_groups) -> Tensor:
    d_k = q.shape[-1]
    counts = counts.astype(k.data.dtype)
    key_sums = K.segment_sum(k, ids, n_groups)
    safe_counts = np.maximum(counts, 1.0)[..., None]
    representatives = key_sums / safe_counts
    scores = (q @ representatives.swapaxes(-1, -2)) * (1.0 / math.sqrt(d_k))
    attn = K.fused_group_softmax(scores, counts)
    v_agg = K.segment_sum(v, ids, n_groups)
    return attn @ v_agg


def bench_group_forward_backward(n: int = 1024, repeats: int = 5) -> dict:
    q64, k64, v64 = _qkv(n, np.float64)
    ids, counts, n_groups = _grouping(k64, N_GROUPS)

    def run(path, q_arr, k_arr, v_arr, backend):
        q = Tensor(q_arr, requires_grad=True)
        k = Tensor(k_arr, requires_grad=True)
        v = Tensor(v_arr, requires_grad=True)
        with K.use_backend(backend):
            out = path(q, k, v, ids, counts, n_groups)
            out.sum().backward()
        return out

    baseline = _time(
        lambda: run(_legacy_group_attention, q64, k64, v64, "reference"),
        repeats=repeats,
    )
    q32, k32, v32 = (a.astype(np.float32) for a in (q64, k64, v64))
    fused = _time(
        lambda: run(_fused_group_attention, q32, k32, v32, "fused"),
        repeats=repeats,
    )
    # Decomposed ablations so future regressions are attributable.
    fused_f64 = _time(
        lambda: run(_fused_group_attention, q64, k64, v64, "fused"),
        repeats=repeats,
    )
    legacy_f32 = _time(
        lambda: run(_legacy_group_attention, q32, k32, v32, "reference"),
        repeats=repeats,
    )
    return {
        "n": n,
        "batch": BATCH,
        "heads": HEADS,
        "head_dim": HEAD_DIM,
        "n_groups": n_groups,
        "baseline_composed_reference_float64_seconds": baseline,
        "fused_float32_seconds": fused,
        "fused_float64_seconds": fused_f64,
        "composed_reference_float32_seconds": legacy_f32,
        "speedup_fused_f32_vs_baseline": baseline / fused,
        "target_speedup": TARGET_SPEEDUP,
        "meets_target": baseline / fused >= TARGET_SPEEDUP,
    }


def bench_tokens_per_second(lengths=(256, 1024, 4096), repeats: int = 3) -> dict:
    """Forward-only (inference fast path) tokens/sec per mechanism/dtype."""
    results: dict = {}
    for kind in ("vanilla", "group"):
        results[kind] = {}
        for dtype_name in ("float32", "float64"):
            dtype = np.dtype(dtype_name)
            per_length = {}
            for n in lengths:
                q, k, v = (Tensor(a) for a in _qkv(n, dtype))
                if kind == "vanilla":
                    mechanism = VanillaAttention()
                else:
                    mechanism = GroupAttention(
                        n_groups=N_GROUPS, rng=np.random.default_rng(2)
                    )

                def step():
                    with no_grad():
                        mechanism(q, k, v)

                seconds = _time(step, repeats=repeats)
                per_length[str(n)] = {
                    "seconds_per_forward": seconds,
                    "tokens_per_second": BATCH * n / seconds,
                }
            results[kind][dtype_name] = per_length
    return results


def main(argv: list[str] | None = None) -> dict:
    args = parse_bench_args(__doc__, argv)
    if args.smoke:
        fwd_bwd = bench_group_forward_backward(n=128, repeats=1)
        tokens = bench_tokens_per_second(lengths=(64,), repeats=1)
    else:
        fwd_bwd = bench_group_forward_backward()
        tokens = bench_tokens_per_second()
    payload = {
        "meta": bench_meta(
            smoke=args.smoke,
            kernel_backends=K.available_backends(),
            geometry={"batch": BATCH, "heads": HEADS, "head_dim": HEAD_DIM,
                      "n_groups": N_GROUPS},
        ),
        "group_attention_forward_backward": fwd_bwd,
        "tokens_per_second": tokens,
    }

    fb = payload["group_attention_forward_backward"]
    print(f"group attention fwd+bwd n={fb['n']}:")
    print(f"  baseline (composed ops, reference, f64): {fb['baseline_composed_reference_float64_seconds']*1e3:8.1f} ms")
    print(f"  fused kernels, f32:                      {fb['fused_float32_seconds']*1e3:8.1f} ms")
    print(f"  speedup: {fb['speedup_fused_f32_vs_baseline']:.2f}x (target >= {TARGET_SPEEDUP}x; met={fb['meets_target']})")
    for kind, by_dtype in payload["tokens_per_second"].items():
        for dtype_name, per_length in by_dtype.items():
            rates = ", ".join(
                f"n={n}: {v['tokens_per_second']:,.0f} tok/s" for n, v in per_length.items()
            )
            print(f"{kind:8s} {dtype_name}: {rates}")
    emit_payload(payload, "kernels", args.out, smoke=args.smoke)
    return payload


if __name__ == "__main__":
    main()
