"""Figure 4: varying MGH series length — imputation MSE (a) and time (b).

Paper shape to reproduce:
* Vanilla cannot handle paper lengths *longer than* 8,000 (Sec. 6.3.2):
  it runs at 8,000 but OOMs the 16 GB V100 at 10,000;
* the longer the series, the larger Group Attn.'s speedup over the
  alternatives (the paper's headline 63x is vanilla@8000 vs group);
* Group Attn.'s epoch time grows sub-linearly (grouping opportunities
  increase with length);
* MSE stays comparable across methods.
"""

import pytest

#: Full-experiment benchmark: excluded from the fast tier (-m 'not slow').
pytestmark = pytest.mark.slow

import numpy as np

from repro.experiments import BENCH, format_table, run_varying_length

from conftest import run_once


def test_fig4_varying_length(benchmark, record):
    scale = BENCH.with_(epochs=8, size_scale=0.004, length_scale=0.25, lr=3e-3)
    rows = run_once(
        benchmark,
        lambda: run_varying_length(
            lengths_paper=(2000, 4000, 6000, 8000, 10000), scale=scale, seed=29
        ),
    )
    record(
        "fig4_varying_length",
        format_table(
            rows,
            columns=["paper_length", "method", "mse", "epoch_seconds", "note"],
            title="Figure 4 — varying MGH length (imputation)",
        ),
    )

    def rows_for(method):
        return {r["paper_length"]: r for r in rows if r["method"] == method}

    vanilla = rows_for("Vanilla")
    group = rows_for("Group Attn.")

    # (1) OOM pattern: vanilla runs at 8000 but dies at 10000 (Sec. 6.3.2:
    # "Vanilla cannot handle sequences longer than 8000").
    assert vanilla[8000]["note"] == ""
    assert vanilla[10000]["note"] == "N/A (OOM)"
    assert vanilla[2000]["note"] == ""

    # (2) Speedup grows with length: the headline comparison is at the
    # longest length both run (8000, where the paper reports 63x).
    speedup_2k = vanilla[2000]["epoch_seconds"] / group[2000]["epoch_seconds"]
    speedup_8k = vanilla[8000]["epoch_seconds"] / group[8000]["epoch_seconds"]
    assert speedup_8k > speedup_2k

    # (3) Group attention handles every length with finite MSE.
    for length in (2000, 4000, 6000, 8000, 10000):
        assert group[length]["mse"] is not None
        assert np.isfinite(group[length]["mse"])

    # Record the headline speedup for EXPERIMENTS.md.
    summary = [{
        "comparison": "Vanilla/Group epoch-time ratio @2000",
        "value": speedup_2k,
    }, {
        "comparison": "Vanilla/Group epoch-time ratio @8000 (paper's 63x point)",
        "value": speedup_8k,
    }]
    record("fig4_speedup_summary", format_table(summary, title="Figure 4 — speedup summary"))
