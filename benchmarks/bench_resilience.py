"""Resilience benchmark: availability and tail latency under injected faults.

Drives open-loop load (fixed request rate) through the replicated
serving tier (:class:`~repro.serve.WorkerPool` +
:class:`~repro.serve.Router`) while a seeded
:class:`~repro.serve.ChaosSchedule` injects the acceptance faults:

* one of the workers is **killed mid-load** (hard ``os._exit`` before
  serving a scheduled request) — the supervisor must respawn it and the
  router must re-dispatch its in-flight requests;
* a fraction of replies is **delayed past the request deadline** — the
  per-attempt timeout must re-dispatch those requests to another
  replica in time.

Reported per run:

* **availability** — fraction of *admitted* requests that resolved with
  a result (acceptance: >= 99%); shed requests are reported separately
  (``shed_rate``) because rejecting fast at admission is correct
  behaviour, not a failure;
* **correctness** — every delivered result is compared bitwise against
  a serial single-engine run (acceptance: zero mismatches);
* **typed failures** — every failed request must carry a typed
  :class:`~repro.errors.ServingError`; untyped failures and hung waits
  are acceptance violations (expected zero);
* **latency** p50/p95/p99 of successful requests, and **recovery time**
  (crash event to the replacement incarnation's ready event, from
  ``pool.stats.events``).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_resilience.py [out.json] [--smoke]

Emits ``benchmarks/BENCH_resilience.json`` by default.  ``--smoke`` runs
a tiny load (seconds, exercised by CI) so the script cannot rot.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
import sys

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import bench_meta, emit_payload, parse_bench_args

import repro
from repro.errors import (
    DeadlineExceededError,
    IntegrityError,
    OverloadError,
    ReproError,
    WorkerCrashError,
)
from repro.kernels.threads import threads_scope
from repro.serve import ChaosSchedule, InferenceEngine, ModelArtifact, Router, WorkerPool

TARGET_AVAILABILITY = 0.99
CHAOS_SEED = 2024  #: the pinned fault-plan seed (see EXPERIMENTS.md)


def build_artifact() -> ModelArtifact:
    config = repro.RitaConfig(
        input_channels=2,
        max_len=64,
        dim=8,
        n_heads=2,
        n_layers=1,
        attention="vanilla",  # deterministic forward: bitwise comparison is meaningful
        dropout=0.0,
        n_classes=3,
    )
    repro.seed_all(0)
    model = repro.RitaModel(config, rng=np.random.default_rng(0)).eval()
    return ModelArtifact.from_model(model)


def make_requests(n: int) -> list[np.ndarray]:
    rng = np.random.default_rng(42)
    return [
        rng.standard_normal((int(rng.integers(8, 49)), 2)).astype(np.float64)
        for _ in range(n)
    ]


def percentile_ms(latencies: list[float], q: float) -> float | None:
    if not latencies:
        return None
    return 1e3 * float(np.percentile(np.asarray(latencies), q))


def run_load(artifact, requests, *, n_workers, rate_per_s, deadline_s,
             kill_at, delay_rate, delay_s) -> dict:
    chaos = ChaosSchedule(
        seed=CHAOS_SEED,
        kills=kill_at,
        delay_rate=delay_rate,
        delay_s=delay_s,
    )
    # Serial ground truth for every request, computed up front.
    reference_engine = InferenceEngine(artifact)
    with threads_scope(1):
        reference = [
            np.asarray(reference_engine.classify(series)) for series in requests
        ]

    outcomes: list[dict] = [None] * len(requests)
    waiters: list[threading.Thread] = []

    def wait_for(index, future, submitted_at):
        entry = {"status": None, "latency_s": None, "error": None}
        try:
            result = future.result(timeout=deadline_s + 10.0)
        except DeadlineExceededError as exc:
            entry["status"] = "deadline"
            entry["error"] = type(exc).__name__
        except (WorkerCrashError, IntegrityError) as exc:
            entry["status"] = "failed_typed"
            entry["error"] = type(exc).__name__
        except ReproError as exc:
            entry["status"] = "failed_typed"
            entry["error"] = type(exc).__name__
        except Exception as exc:  # noqa: BLE001 - acceptance violation
            entry["status"] = "failed_untyped"
            entry["error"] = type(exc).__name__
        else:
            entry["latency_s"] = time.monotonic() - submitted_at
            entry["status"] = (
                "ok" if np.array_equal(result, reference[index]) else "mismatch"
            )
        outcomes[index] = entry

    pool = WorkerPool(artifact, n_workers=n_workers, chaos=chaos)
    router = Router(
        pool,
        max_inflight=max(16, int(rate_per_s * deadline_s * 4)),
        attempt_timeout_s=0.12,
        max_redelivery=3,
        backoff_base_s=0.01,
        length_bucket=8,  # lengths 8..48 spread over the replicas
    )
    interval = 1.0 / rate_per_s
    shed = 0
    try:
        # Measure serving availability, not cold start: the load clock
        # starts once every replica has reported ready.
        ready_deadline = time.monotonic() + 120.0
        while pool.ready_count() < n_workers and time.monotonic() < ready_deadline:
            time.sleep(0.02)
        t_start = time.monotonic()
        for index, series in enumerate(requests):
            target = t_start + index * interval
            lag = target - time.monotonic()
            if lag > 0:
                time.sleep(lag)
            submitted_at = time.monotonic()
            try:
                future = router.submit("classify", series, deadline_s=deadline_s)
            except OverloadError:
                shed += 1
                outcomes[index] = {"status": "shed", "latency_s": None,
                                   "error": "OverloadError"}
                continue
            waiter = threading.Thread(
                target=wait_for, args=(index, future, submitted_at), daemon=True
            )
            waiter.start()
            waiters.append(waiter)
        for waiter in waiters:
            waiter.join(timeout=deadline_s + 15.0)
        wall_s = time.monotonic() - t_start
        hung = sum(1 for entry in outcomes if entry is None)
        # Let in-flight respawns finish so recovery time is observable
        # even when the load ends inside the respawn window.
        recover_deadline = time.monotonic() + 30.0
        while pool.ready_count() < n_workers and time.monotonic() < recover_deadline:
            time.sleep(0.02)
        events = list(pool.stats.events)
        pool_counters = {
            "spawns_total": pool.stats.spawns_total,
            "respawns_total": pool.stats.respawns_total,
            "crashes_total": pool.stats.crashes_total,
            "heartbeat_timeouts_total": pool.stats.heartbeat_timeouts_total,
        }
        router_counters = {
            "submitted_total": router.stats.submitted_total,
            "completed_total": router.stats.completed_total,
            "degraded_total": router.stats.degraded_total,
            "retries_total": router.stats.retries_total,
            "attempt_timeouts_total": router.stats.attempt_timeouts_total,
            "checksum_failures_total": router.stats.checksum_failures_total,
            "stale_results_total": router.stats.stale_results_total,
        }
    finally:
        router.close()
        pool.close()

    # Recovery time: each crash/heartbeat-timeout event to the first
    # ready event of the replacement incarnation of the same worker.
    recoveries = []
    for t_lost, kind, worker_id, generation in events:
        if kind not in ("crashed", "heartbeat-timeout", "spawn-timeout"):
            continue
        ready_times = [
            t for t, k, w, g in events
            if k == "ready" and w == worker_id and g > generation and t >= t_lost
        ]
        if ready_times:
            recoveries.append(min(ready_times) - t_lost)

    counts = {}
    for entry in outcomes:
        status = "hung" if entry is None else entry["status"]
        counts[status] = counts.get(status, 0) + 1
    ok = counts.get("ok", 0)
    admitted = len(requests) - shed
    latencies = [e["latency_s"] for e in outcomes
                 if e is not None and e["latency_s"] is not None]
    return {
        "requests": len(requests),
        "admitted": admitted,
        "wall_seconds": wall_s,
        "offered_rate_per_s": rate_per_s,
        "outcomes": counts,
        "availability": (ok / admitted) if admitted else None,
        "shed_rate": shed / len(requests),
        "bitwise_mismatches": counts.get("mismatch", 0),
        "untyped_failures": counts.get("failed_untyped", 0),
        "hung_requests": hung,
        "latency_p50_ms": percentile_ms(latencies, 50),
        "latency_p95_ms": percentile_ms(latencies, 95),
        "latency_p99_ms": percentile_ms(latencies, 99),
        "recovery": {
            "losses": len(recoveries),
            "mean_recovery_s": float(np.mean(recoveries)) if recoveries else None,
            "max_recovery_s": float(np.max(recoveries)) if recoveries else None,
        },
        "pool": pool_counters,
        "router": router_counters,
    }


def main(argv: list[str] | None = None) -> dict:
    args = parse_bench_args(__doc__, argv)

    if args.smoke:
        n_workers, n_requests, rate_per_s = 2, 24, 30.0
        kill_at = {1: (0, 2)}  # worker 1 dies before its 3rd request
        # The whole smoke run fits inside the respawn window, so a
        # delayed reply may have no second replica to retry on; a
        # deadline above the delay keeps the scenario meaningful.
        deadline_s = 1.0
    else:
        n_workers, n_requests, rate_per_s = 4, 200, 25.0
        kill_at = {1: (0, 9)}  # worker 1 dies before its 10th request
        deadline_s = 0.6  # *below* the injected delay: retry must save them
    delay_rate, delay_s = 0.05, 0.8  # 5% of replies delayed past the deadline

    artifact = build_artifact()
    requests = make_requests(n_requests)
    run = run_load(
        artifact, requests,
        n_workers=n_workers, rate_per_s=rate_per_s, deadline_s=deadline_s,
        kill_at=kill_at, delay_rate=delay_rate, delay_s=delay_s,
    )

    acceptance = {
        "availability": {
            "value": run["availability"],
            "target": TARGET_AVAILABILITY,
            "meets_target": (
                run["availability"] is not None
                and run["availability"] >= TARGET_AVAILABILITY
            ),
        },
        "every_result_bitwise_serial": run["bitwise_mismatches"] == 0,
        "every_failure_typed": run["untyped_failures"] == 0,
        "no_request_hung": run["hung_requests"] == 0,
        "worker_was_killed_and_recovered": (
            run["pool"]["crashes_total"] >= 1 and run["recovery"]["losses"] >= 1
        ),
    }

    payload = {
        "meta": bench_meta(
            smoke=args.smoke,
            chaos={
                "seed": CHAOS_SEED,
                "kills": {str(k): list(v) for k, v in kill_at.items()},
                "delay_rate": delay_rate,
                "delay_s": delay_s,
            },
            cluster={
                "n_workers": n_workers,
                "deadline_s": deadline_s,
                "attempt_timeout_s": 0.12,
                "max_redelivery": 3,
            },
            geometry={"dim": 8, "n_heads": 2, "n_layers": 1,
                      "lengths": "8..48", "channels": 2},
        ),
        "run": run,
        "acceptance": acceptance,
    }

    print(
        f"availability: {run['availability']:.4f} for {run['admitted']} admitted "
        f"(target >= {TARGET_AVAILABILITY}; met={acceptance['availability']['meets_target']}) "
        f"shed_rate={run['shed_rate']:.3f}"
    )
    print(
        f"latency ms p50/p95/p99: {run['latency_p50_ms']:.1f}/"
        f"{run['latency_p95_ms']:.1f}/{run['latency_p99_ms']:.1f}; "
        f"crashes={run['pool']['crashes_total']} "
        f"recovery={run['recovery']['mean_recovery_s']}"
    )
    print(
        f"bitwise mismatches={run['bitwise_mismatches']} "
        f"untyped={run['untyped_failures']} hung={run['hung_requests']}"
    )
    emit_payload(payload, "resilience", args.out, smoke=args.smoke)
    return payload


if __name__ == "__main__":
    main()
