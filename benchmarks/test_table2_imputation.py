"""Table 2: imputation — MSE and training time per method per dataset.

Paper shape to reproduce:
* Group Attn. reaches comparable/better MSE at lower training time;
* TST and Vanilla fail with OOM on MGH (length 10,000) — decided by the
  simulated 16 GB V100 at paper geometry;
* the efficient methods (Performer/Linformer/Group) all achieve low MSE
  on MGH, with Group Attn. fastest.
"""

import pytest

#: Full-experiment benchmark: excluded from the fast tier (-m 'not slow').
pytestmark = pytest.mark.slow

from repro.experiments import BENCH, format_table, run_imputation

from conftest import run_once

SCALES = {
    "wisdm": BENCH.with_(epochs=3),
    "hhar": BENCH.with_(epochs=3),
    "rwhar": BENCH.with_(epochs=3),
    "ecg": BENCH.with_(epochs=2, size_scale=0.003, length_scale=0.2),
    "mgh": BENCH.with_(epochs=2, size_scale=0.004, length_scale=0.05),
}


@pytest.mark.parametrize("dataset", ["wisdm", "hhar", "rwhar", "ecg", "mgh"])
def test_table2_imputation(benchmark, record, dataset):
    rows = run_once(
        benchmark, lambda: run_imputation(dataset, scale=SCALES[dataset], seed=11)
    )
    record(
        f"table2_imputation_{dataset}",
        format_table(
            rows,
            columns=["dataset", "method", "mse", "epoch_seconds", "note"],
            title=f"Table 2 — imputation ({dataset})",
        ),
    )
    by_method = {r["method"]: r for r in rows}
    if dataset == "mgh":
        # The paper's OOM entries.
        assert by_method["TST"]["note"] == "N/A (OOM)"
        assert by_method["Vanilla"]["note"] == "N/A (OOM)"
        for method in ["Performer", "Linformer", "Group Attn."]:
            assert by_method[method]["mse"] is not None
    else:
        # Everyone trains; group MSE within a small factor of vanilla's.
        assert by_method["Group Attn."]["mse"] is not None
        assert by_method["Vanilla"]["mse"] is not None
        assert by_method["Group Attn."]["mse"] <= by_method["Vanilla"]["mse"] * 3 + 0.05
    if dataset in ("ecg", "mgh"):
        # Long series: group attention is the fastest RITA variant or close.
        times = {
            m: r["epoch_seconds"] for m, r in by_method.items() if r["epoch_seconds"]
        }
        assert times["Group Attn."] <= min(times.values()) * 1.5
