"""Parallel-dispatch benchmark: thread sweep over the hot kernels.

Measures, on this machine:

1. **Group-attention forward+backward at n=1024** under the ``parallel``
   backend at 1 / 2 / 4 threads (same fused-kernel math at every point —
   only the dispatch changes).  The acceptance bar is >= 2.5x tokens/sec
   at 4 threads vs 1 — reachable only with >= 4 physical cores, so
   ``physical_cores`` is recorded next to the ratio and ``meets_target``
   stays honest on smaller machines.
2. **n=256 no-regression cell** — small inputs must take the serial
   path (the size heuristic), so the parallel backend at 4 threads stays
   within noise of plain fused.
3. **Process-parallel evaluation** — ``evaluate_task_parallel`` wall
   clock at 1 vs 2 workers on a small classification sweep (the
   multiprocessing path trades ~1s of spawn+import per worker for
   GIL-free scaling, so it only pays off on long sweeps).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_parallel.py [out.json] [--smoke]

Emits ``benchmarks/BENCH_parallel.json`` (``--smoke``:
``BENCH_parallel_smoke.json`` — tiny sizes, exercised by CI) by default.
Wall-clock numbers are machine-specific; compare ratios, not absolute
seconds.
"""

from __future__ import annotations

import math
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import bench_meta, emit_payload, parse_bench_args

import repro.kernels as K
from repro.autograd.tensor import Tensor
from repro.cluster.kmeans import batched_kmeans
from repro.data.dataset import ArrayDataset
from repro.model import RitaConfig, RitaModel
from repro.serve import ModelArtifact
from repro.tasks import ClassificationTask
from repro.train import evaluate_task_parallel

BATCH = 2
HEADS = 4
HEAD_DIM = 32
N_GROUPS = 64
THREAD_SWEEP = (1, 2, 4)
TARGET_SPEEDUP = 2.5  # tokens/sec at 4 threads vs 1, n=1024 fwd+bwd


def _physical_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _time(fn, *, repeats: int, warmup: int = 1) -> float:
    for _ in range(warmup):
        fn()
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _qkv(n: int, dtype=np.float32, seed: int = 0):
    rng = np.random.default_rng(seed)
    shape = (BATCH, HEADS, n, HEAD_DIM)
    return tuple(rng.standard_normal(shape).astype(dtype) for _ in range(3))


def _grouping(k: np.ndarray, n_groups: int):
    batch, heads, n, d_k = k.shape
    result = batched_kmeans(
        k.reshape(batch * heads, n, d_k), n_groups, n_iters=2,
        rng=np.random.default_rng(1),
    )
    ids = result.assignments.reshape(batch, heads, n)
    counts = result.counts.reshape(batch, heads, result.n_clusters)
    return ids, counts, result.n_clusters


def _group_attention(q, k, v, ids, counts, n_groups) -> Tensor:
    d_k = q.shape[-1]
    counts = counts.astype(k.data.dtype)
    key_sums = K.segment_sum(k, ids, n_groups)
    representatives = key_sums / np.maximum(counts, 1.0)[..., None]
    scores = (q @ representatives.swapaxes(-1, -2)) * (1.0 / math.sqrt(d_k))
    attn = K.fused_group_softmax(scores, counts)
    v_agg = K.segment_sum(v, ids, n_groups)
    return attn @ v_agg


def bench_thread_sweep(n: int = 1024, repeats: int = 5) -> dict:
    """Group-attention fwd+bwd tokens/sec at each thread count."""
    q_arr, k_arr, v_arr = _qkv(n)
    ids, counts, n_groups = _grouping(k_arr.astype(np.float64), N_GROUPS)

    def step():
        q = Tensor(q_arr, requires_grad=True)
        k = Tensor(k_arr, requires_grad=True)
        v = Tensor(v_arr, requires_grad=True)
        out = _group_attention(q, k, v, ids, counts, n_groups)
        out.sum().backward()

    per_threads = {}
    with K.use_backend("parallel"):
        for threads in THREAD_SWEEP:
            with K.threads_scope(threads):
                seconds = _time(step, repeats=repeats)
            per_threads[str(threads)] = {
                "seconds_per_step": seconds,
                "tokens_per_second": BATCH * n / seconds,
            }
    speedup = (
        per_threads["1"]["seconds_per_step"] / per_threads["4"]["seconds_per_step"]
    )
    cores = _physical_cores()
    return {
        "n": n,
        "n_groups": n_groups,
        "per_threads": per_threads,
        "speedup_4_threads_vs_1": speedup,
        "target_speedup": TARGET_SPEEDUP,
        "physical_cores": cores,
        "meets_target": speedup >= TARGET_SPEEDUP,
        "note": (
            "thread scaling is bounded by physical cores; on a "
            f"{cores}-core machine the 4-thread cell measures dispatch "
            "overhead, not speedup" if cores < 4 else ""
        ),
    }


def bench_small_input_no_regression(n: int = 256, repeats: int = 5) -> dict:
    """n=256 must not regress: the size heuristic keeps it serial."""
    q_arr, k_arr, v_arr = _qkv(n, seed=3)
    ids, counts, n_groups = _grouping(k_arr.astype(np.float64), N_GROUPS)

    def step():
        q = Tensor(q_arr, requires_grad=True)
        k = Tensor(k_arr, requires_grad=True)
        v = Tensor(v_arr, requires_grad=True)
        out = _group_attention(q, k, v, ids, counts, n_groups)
        out.sum().backward()

    with K.use_backend("fused"):
        fused_seconds = _time(step, repeats=repeats)
    with K.use_backend("parallel"), K.threads_scope(4):
        parallel_seconds = _time(step, repeats=repeats)
    backend = K.get_backend("parallel")
    backend.reset_stats()
    with K.use_backend("parallel"), K.threads_scope(4):
        step()
    sharded = backend.snapshot()["sharded_calls"]
    return {
        "n": n,
        "fused_seconds": fused_seconds,
        "parallel_4_threads_seconds": parallel_seconds,
        "overhead_ratio": parallel_seconds / fused_seconds,
        "max_overhead_ratio": 1.05,
        # The batch dim at n=256 sits under the element threshold for the
        # softmax-family shards; any residual sharding is from the larger
        # segment ops and must still keep the ratio within bounds.
        "sharded_calls_per_step": int(sharded),
        "within_bounds": parallel_seconds / fused_seconds <= 1.05,
    }


def bench_multiprocessing_eval(
    n_samples: int = 64, length: int = 64, repeats: int = 1
) -> dict:
    """evaluate_task_parallel wall clock: 1 worker (in-process) vs 2."""
    rng = np.random.default_rng(9)
    config = RitaConfig(
        input_channels=2, max_len=length, dim=32, n_layers=2, n_heads=4,
        attention="vanilla", dropout=0.0, n_classes=3,
    )
    model = RitaModel(config, rng=rng).eval()
    artifact = ModelArtifact.from_model(model)
    dataset = ArrayDataset(
        x=rng.standard_normal((n_samples, length, 2)),
        y=rng.integers(0, 3, size=n_samples),
    )
    task = ClassificationTask()

    def run(workers):
        return evaluate_task_parallel(
            artifact, task, dataset, batch_size=8, num_workers=workers, seed=0
        )

    serial_seconds = _time(lambda: run(1), repeats=repeats, warmup=0)
    two_worker_seconds = _time(lambda: run(2), repeats=repeats, warmup=0)
    return {
        "n_samples": n_samples,
        "length": length,
        "serial_seconds": serial_seconds,
        "two_worker_seconds": two_worker_seconds,
        "speedup_2_workers": serial_seconds / two_worker_seconds,
        "note": (
            "includes ~1s spawn+import per worker; the mp path is for "
            "long sweeps, not single small evaluations"
        ),
    }


def main(argv: list[str] | None = None) -> dict:
    args = parse_bench_args(__doc__, argv)
    meta = bench_meta(
        smoke=args.smoke,
        physical_cores=_physical_cores(),
        kernel_backends=K.available_backends(),
        geometry={"batch": BATCH, "heads": HEADS, "head_dim": HEAD_DIM,
                  "n_groups": N_GROUPS},
    )
    if args.smoke:
        # The mp-eval arm costs ~1s of spawn+import per worker; the smoke
        # tier skips it and shrinks the kernel cells to seconds.
        payload = {
            "meta": meta,
            "thread_sweep": bench_thread_sweep(n=128, repeats=1),
            "small_input_no_regression": bench_small_input_no_regression(n=64, repeats=1),
        }
        sweep = payload["thread_sweep"]["per_threads"]
        print("smoke ok:", {t: f"{v['seconds_per_step']*1e3:.1f} ms" for t, v in sweep.items()})
        small = payload["small_input_no_regression"]
        print(f"small-input overhead ratio: {small['overhead_ratio']:.3f}")
        emit_payload(payload, "parallel", args.out, smoke=True)
        return payload

    payload = {
        "meta": meta,
        "thread_sweep": bench_thread_sweep(),
        "small_input_no_regression": bench_small_input_no_regression(),
        "multiprocessing_eval": bench_multiprocessing_eval(),
    }

    sweep = payload["thread_sweep"]
    print(f"group attention fwd+bwd n={sweep['n']} (parallel backend):")
    for threads, cell in sweep["per_threads"].items():
        print(f"  {threads} thread(s): {cell['seconds_per_step']*1e3:8.1f} ms "
              f"({cell['tokens_per_second']:,.0f} tok/s)")
    print(f"  4-vs-1 speedup: {sweep['speedup_4_threads_vs_1']:.2f}x "
          f"(target >= {sweep['target_speedup']}x; met={sweep['meets_target']}; "
          f"{sweep['physical_cores']} physical core(s))")
    small = payload["small_input_no_regression"]
    print(f"n={small['n']} overhead ratio: {small['overhead_ratio']:.3f} "
          f"(bound {small['max_overhead_ratio']}; ok={small['within_bounds']})")
    mp = payload["multiprocessing_eval"]
    print(f"mp eval: serial {mp['serial_seconds']:.2f}s vs 2 workers "
          f"{mp['two_worker_seconds']:.2f}s")
    emit_payload(payload, "parallel", args.out, smoke=False)
    return payload


if __name__ == "__main__":
    main()
