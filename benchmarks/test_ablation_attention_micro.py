"""Ablation: attention microbenchmarks (Sec. 4.2 complexity claims).

Measures forward+backward wall clock of each attention mechanism at
increasing sequence lengths, isolating the mechanism from the rest of the
model.  Reproduced shape: vanilla grows ~quadratically; group attention
grows ~linearly in n (at fixed N); the crossover favours group attention
at long lengths.
"""

import numpy as np
import pytest

#: Full-experiment benchmark: excluded from the fast tier (-m 'not slow').
pytestmark = pytest.mark.slow

from repro.attention import (
    GroupAttention,
    LinformerAttention,
    LocalAttention,
    PerformerAttention,
    VanillaAttention,
)
from repro.autograd import Tensor
from repro.experiments import format_table

from conftest import run_once

LENGTHS = [64, 256, 1024]
HEADS, DIM = 2, 16


def make_mechanism(kind, rng):
    if kind == "vanilla":
        return VanillaAttention()
    if kind == "group":
        return GroupAttention(n_groups=32, kmeans_iters=2, rng=rng)
    if kind == "performer":
        return PerformerAttention(n_features=32, rng=rng)
    if kind == "linformer":
        return LinformerAttention(max_len=max(LENGTHS), proj_dim=32, rng=rng)
    return LocalAttention(window=16)


def step(mechanism, n, rng):
    q = Tensor(rng.standard_normal((1, HEADS, n, DIM)), requires_grad=True)
    k = Tensor(rng.standard_normal((1, HEADS, n, DIM)), requires_grad=True)
    v = Tensor(rng.standard_normal((1, HEADS, n, DIM)), requires_grad=True)
    mechanism(q, k, v).sum().backward()


@pytest.mark.parametrize("kind", ["vanilla", "group", "performer", "linformer"])
@pytest.mark.parametrize("n", LENGTHS)
def test_attention_forward_backward(benchmark, kind, n):
    rng = np.random.default_rng(0)
    mechanism = make_mechanism(kind, rng)
    benchmark.pedantic(
        lambda: step(mechanism, n, rng), rounds=3, iterations=1, warmup_rounds=1
    )


def test_attention_scaling_summary(benchmark, record):
    """One-shot scaling comparison with explicit ratio assertions."""
    import time

    def run():
        rng = np.random.default_rng(1)
        rows = []
        times = {}
        for kind in ["vanilla", "group", "performer", "linformer"]:
            mechanism = make_mechanism(kind, rng)
            for n in LENGTHS:
                step(mechanism, n, rng)  # warmup
                started = time.perf_counter()
                for _ in range(3):
                    step(mechanism, n, rng)
                elapsed = (time.perf_counter() - started) / 3
                times[(kind, n)] = elapsed
                rows.append({"mechanism": kind, "n": n, "seconds": elapsed})
        return rows, times

    rows, times = run_once(benchmark, run)
    record("ablation_attention_micro", format_table(
        rows, title="Attention fwd+bwd wall clock vs sequence length"
    ))
    # Vanilla's cost grows faster than group attention's.
    vanilla_growth = times[("vanilla", 1024)] / times[("vanilla", 64)]
    group_growth = times[("group", 1024)] / times[("group", 64)]
    assert vanilla_growth > group_growth
    # At the longest length, group attention beats vanilla outright.
    assert times[("group", 1024)] < times[("vanilla", 1024)]
