"""Figure 5: comparison to the non-deep-learning SOTA (GRAIL).

Paper shape to reproduce: RITA (group attention) beats GRAIL in accuracy
on all three univariate datasets by a wide margin (the expressive power
of the Transformer), at a competitive training cost per epoch.
"""

import pytest

#: Full-experiment benchmark: excluded from the fast tier (-m 'not slow').
pytestmark = pytest.mark.slow


from repro.experiments import BENCH, format_table, run_grail_comparison

from conftest import run_once


def test_fig5_grail_comparison(benchmark, record):
    scale = BENCH.with_(epochs=10, size_scale=0.01, lr=3e-3)
    rows = run_once(
        benchmark,
        lambda: run_grail_comparison(
            datasets=("wisdm_uni", "hhar_uni", "rwhar_uni"), scale=scale, seed=31
        ),
    )
    record(
        "fig5_grail",
        format_table(
            rows,
            columns=[
                "dataset", "rita_accuracy", "grail_accuracy",
                "rita_epoch_seconds", "grail_fit_seconds",
            ],
            title="Figure 5 — RITA (Group Attn.) vs GRAIL (univariate)",
        ),
    )
    wins = sum(1 for r in rows if r["rita_accuracy"] >= r["grail_accuracy"])
    # The paper's direction: RITA wins on accuracy.  At this scale we
    # require winning on at least 2 of 3 datasets.
    assert wins >= 2
    for r in rows:
        chance = {"wisdm_uni": 1 / 18, "hhar_uni": 1 / 5, "rwhar_uni": 1 / 8}[r["dataset"]]
        # Above chance everywhere (>= with a tiny slack for the 18-class
        # univariate WISDM*, which is hard at this training budget).
        assert r["rita_accuracy"] >= chance * 0.9
