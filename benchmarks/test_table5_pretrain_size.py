"""Table 5: effect of pretraining-set size on few-label accuracy.

Paper shape to reproduce: accuracy grows with the pretraining pool, with
diminishing marginal utility (the first chunk of unlabeled data gives the
largest jump).

Dataset substitution at bench scale: the paper runs this on WISDM, whose
18 classes stay at chance level with 1/125 of the paper's data and epoch
budget, so no pretraining effect is measurable there.  The bench runs the
HHAR surrogate (5 classes), where few-label accuracy is learnable and the
pretraining effect has room to show.  EXPERIMENTS.md records both.
"""

import pytest

#: Full-experiment benchmark: excluded from the fast tier (-m 'not slow').
pytestmark = pytest.mark.slow


from repro.experiments import BENCH, format_table, run_pretrain_size_ablation

from conftest import run_once


def test_table5_pretrain_size(benchmark, record):
    scale = BENCH.with_(
        epochs=8, pretrain_epochs=4, size_scale=0.006, finetune_per_class=10, lr=3e-3
    )
    rows = run_once(
        benchmark,
        lambda: run_pretrain_size_ablation(
            "hhar", scale=scale, fractions=(0.0, 0.2, 0.6, 1.0), seed=23
        ),
    )
    record(
        "table5_pretrain_size",
        format_table(
            rows,
            columns=["pretrain_size", "accuracy"],
            title="Table 5 — few-label accuracy vs pretraining-set size "
                  "(HHAR surrogate; WISDM in the paper)",
        ),
    )
    accuracies = [r["accuracy"] for r in rows]
    # Largest pool at least matches no pretraining (noise margin).
    assert accuracies[-1] >= accuracies[0] - 0.1
    # Some pretraining pool size beats no pretraining.
    assert max(accuracies[1:]) >= accuracies[0]
