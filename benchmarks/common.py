"""Shared scaffolding for the ``bench_*.py`` sweep scripts.

Every sweep script follows the same contract::

    def main(argv: list[str] | None = None) -> dict:
        args = parse_bench_args(__doc__, argv)
        payload = {"meta": bench_meta(smoke=args.smoke, ...), ...}
        emit_payload(payload, "kernels", args.out, smoke=args.smoke)
        return payload

* ``[out] [--smoke]`` CLI (positional output path, tiny-geometry flag);
* a ``meta`` block recording interpreter/NumPy/machine/timestamp;
* ``BENCH_<name>.json`` (or ``BENCH_<name>_smoke.json``) written as
  ``json.dumps(payload, indent=2) + "\\n"`` — the byte format
  ``repro.experiments.grid.render`` reproduces from the database;
* the payload returned so the grid's ``bench_script`` runner (and
  tests) can consume it without re-reading the file.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

BENCH_DIR = Path(__file__).resolve().parent


def parse_bench_args(doc: str | None, argv: list[str] | None = None) -> argparse.Namespace:
    """The shared ``[out] [--smoke]`` command line."""
    parser = argparse.ArgumentParser(description=(doc or "").splitlines()[0])
    parser.add_argument("out", nargs="?", default=None, help="output JSON path")
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny geometry (seconds): CI guard that the script still runs",
    )
    return parser.parse_args(argv)


def bench_meta(*, smoke: bool = False, **extra) -> dict:
    """The run-environment block every ``BENCH_*.json`` carries."""
    meta = {
        "python": platform.python_version(),
        "numpy": np.version.version,
        "machine": platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": smoke,
    }
    meta.update(extra)
    return meta


def emit_payload(payload: dict, bench_name: str, out: str | None, *,
                 smoke: bool = False) -> Path:
    """Write the payload JSON (atomically) and say where it went."""
    from repro.serialize import atomic_write_text

    default_name = f"BENCH_{bench_name}_smoke.json" if smoke else f"BENCH_{bench_name}.json"
    out_file = Path(out) if out else BENCH_DIR / default_name
    atomic_write_text(out_file, json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_file}")
    return out_file
