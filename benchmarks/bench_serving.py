"""Serving benchmark: the perf trajectory file for the inference stack.

The ROADMAP north-star is serving heavy traffic; this benchmark tracks
the two serving-regime claims of the `repro.serve` stack at the
``n = 1024`` acceptance geometry (series length 1024, group attention
with ``N = 64`` — the grouping bench's acceptance cell):

* **Micro-batching** (`MicroBatcher` + `InferenceEngine`): requests/sec
  and per-request p50/p95 latency versus micro-batch size, against the
  naive one-request-at-a-time loop (the legacy
  ``model.predict_logits(x[None])`` serving pattern: every request is a
  batch-of-one forward and K-means reclusters on every call).  Two
  request regimes are reported: ``similar`` — the paper's serving regime
  (a fleet of near-identical signals, e.g. one sensor type across
  users), where the engine's serving-time grouping policy
  (``recluster_every`` + the Lemma-1 drift guard) lets consecutive
  batches reuse the cached partition — and ``independent`` (i.i.d.
  random requests), where the cache cannot help and the speedup is pure
  batching.  The acceptance ratio is read from the ``similar`` regime at
  the default serving batch size.
* **Streaming** (`StreamingSession`): an append-heavy stream (one new
  window per append) served incrementally versus full recompute of
  every complete window per append.

The model is the scaled-down serving geometry (dim 8, 1 head, 2 layers):
on the 1-CPU NumPy substrate wider models are compute-saturated at
batch 1 and micro-batching has nothing to amortize; the scaled registry
(DESIGN.md) applies the same substitution.  Compare ratios, not absolute
seconds, across machines.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_serving.py [out.json] [--smoke]

Emits ``benchmarks/BENCH_serving.json`` by default.  ``--smoke`` runs a
tiny geometry (seconds, exercised by CI) so the script cannot rot.
"""

from __future__ import annotations

import statistics
import time
from pathlib import Path
import sys

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import bench_meta, emit_payload, parse_bench_args

import repro
from repro.serve import InferenceEngine, MicroBatcher, StreamingSession

TARGET_MICROBATCH = 2.0
TARGET_STREAMING = 3.0
SERVING_RECLUSTER_EVERY = 8
#: Acceptance reads the MicroBatcher default batch size (32).
ACCEPT_BATCH_SIZE = 32


def build_model(length: int):
    config = repro.RitaConfig(
        input_channels=3,
        max_len=length + 8,
        dim=8,
        n_heads=1,
        n_layers=2,
        attention="group",
        n_groups=64,
        dropout=0.0,
        n_classes=5,
    )
    repro.seed_all(0)
    return repro.RitaModel(config, rng=np.random.default_rng(0)).eval()


def make_requests(regime: str, n_requests: int, length: int) -> list[np.ndarray]:
    rng = np.random.default_rng(42)
    if regime == "similar":
        base = rng.standard_normal((length, 3)).astype(np.float32)
        return [
            (base + 0.02 * rng.standard_normal((length, 3))).astype(np.float32)
            for _ in range(n_requests)
        ]
    return [rng.standard_normal((length, 3)).astype(np.float32) for _ in range(n_requests)]


def reclusters(model) -> int:
    return sum(layer.reclusters_total for layer in model.group_attention_layers())


def measure_naive(engine, requests, rounds: int) -> dict:
    """One-request-at-a-time loop; per-request latency is directly observed."""
    latencies: list[float] = []
    totals: list[float] = []
    for _ in range(rounds):
        round_latencies = []
        t_round = time.perf_counter()
        for request in requests:
            t0 = time.perf_counter()
            engine.classify(request)
            round_latencies.append(time.perf_counter() - t0)
        totals.append(time.perf_counter() - t_round)
        latencies = round_latencies  # keep the last round (post-warmup)
    return _summary(requests, totals, latencies)


def measure_batched(engine, requests, batch_size: int, rounds: int) -> dict:
    """Closed-loop burst through the MicroBatcher.

    Per-request latency in a burst is the time from submit to the
    completion of the flush that served the request; with pre-arrived
    requests that is the burst service time for every request in it, so
    the p50/p95 come from per-batch service times.
    """
    totals: list[float] = []
    latencies: list[float] = []
    for _ in range(rounds):
        batcher = MicroBatcher(engine.classify, max_batch_size=batch_size)
        round_latencies = []
        t_round = time.perf_counter()
        for start in range(0, len(requests), batch_size):
            burst = requests[start : start + batch_size]
            t0 = time.perf_counter()
            batcher.map(burst)
            round_latencies.extend([time.perf_counter() - t0] * len(burst))
        totals.append(time.perf_counter() - t_round)
        latencies = round_latencies
    return _summary(requests, totals, latencies)


def _summary(requests, totals, latencies) -> dict:
    best_total = min(totals)
    return {
        "requests": len(requests),
        "seconds_total": best_total,
        "requests_per_sec": len(requests) / best_total,
        "latency_p50_ms": 1e3 * statistics.median(latencies),
        "latency_p95_ms": 1e3 * float(np.percentile(latencies, 95)),
    }


def run_microbatch(length: int, n_requests: int, batch_sizes, rounds: int) -> dict:
    out: dict = {}
    for regime in ("similar", "independent"):
        requests = make_requests(regime, n_requests, length)
        arms: dict = {}

        # Naive loop: legacy serving — batch-of-one forwards, the model's
        # training grouping config (recluster_every=1: K-means per call).
        model = build_model(length)
        engine = InferenceEngine(model)
        engine.classify(requests[0])  # warmup
        r0 = reclusters(model)
        arms["naive_loop"] = measure_naive(engine, requests, rounds)
        arms["naive_loop"]["reclusters_per_round"] = (reclusters(model) - r0) // rounds

        for batch_size in batch_sizes:
            for label, kwargs in (
                ("batched", {}),
                ("serving_stack", {"recluster_every": SERVING_RECLUSTER_EVERY}),
            ):
                model = build_model(length)
                engine = InferenceEngine(model, **kwargs)
                MicroBatcher(engine.classify, max_batch_size=batch_size).map(
                    requests[:batch_size]
                )  # warm the batched cache geometry
                r0 = reclusters(model)
                arm = measure_batched(engine, requests, batch_size, rounds)
                arm["reclusters_per_round"] = (reclusters(model) - r0) // rounds
                arm["speedup_vs_naive"] = (
                    arm["requests_per_sec"] / arms["naive_loop"]["requests_per_sec"]
                )
                arms[f"{label}_bs{batch_size}"] = arm
        out[regime] = arms
    return out


def run_streaming(length: int, step: int, n_appends: int, rounds: int) -> dict:
    rng = np.random.default_rng(7)
    stream = rng.standard_normal((length + step * n_appends, 3)).astype(np.float32)

    def session_arm():
        model = build_model(length)
        engine = InferenceEngine(model)
        session = StreamingSession(
            engine, window=length, step=step,
            recluster_every=SERVING_RECLUSTER_EVERY,
        )
        t0 = time.perf_counter()
        session.append(stream[:length])
        for i in range(n_appends):
            session.append(stream[length + i * step : length + (i + 1) * step])
        elapsed = time.perf_counter() - t0
        session.close()
        return elapsed, session.windows_encoded_total

    def recompute_arm():
        model = build_model(length)
        engine = InferenceEngine(model)
        encoded = 0
        t0 = time.perf_counter()
        for seen in range(length, len(stream) + 1, step):
            n_windows = (seen - length) // step + 1
            windows = np.stack(
                [stream[s * step : s * step + length] for s in range(n_windows)]
            )
            engine.embed(windows)
            encoded += n_windows
        return time.perf_counter() - t0, encoded

    streamed_s, streamed_windows = min(session_arm() for _ in range(rounds))
    recompute_s, recompute_windows = min(recompute_arm() for _ in range(rounds))
    return {
        "window": length,
        "step": step,
        "appends": n_appends,
        "streaming_seconds": streamed_s,
        "streaming_windows_encoded": streamed_windows,
        "full_recompute_seconds": recompute_s,
        "full_recompute_windows_encoded": recompute_windows,
        "speedup": recompute_s / streamed_s,
    }


def main(argv: list[str] | None = None) -> dict:
    args = parse_bench_args(__doc__, argv)

    if args.smoke:
        length, n_requests, batch_sizes, rounds = 64, 8, (4,), 1
        stream_step, n_appends = 16, 3
    else:
        length, n_requests, batch_sizes, rounds = 1024, 32, (4, 8, 16, 32), 3
        stream_step, n_appends = 64, 16

    microbatch = run_microbatch(length, n_requests, batch_sizes, rounds)
    streaming = run_streaming(length, stream_step, n_appends, rounds)

    accept_key = f"serving_stack_bs{ACCEPT_BATCH_SIZE if not args.smoke else batch_sizes[0]}"
    similar = microbatch["similar"]
    acceptance = {
        "geometry": {"series_length": length, "n_groups": 64},
        "microbatch": {
            "arm": accept_key,
            "naive_requests_per_sec": similar["naive_loop"]["requests_per_sec"],
            "batched_requests_per_sec": similar[accept_key]["requests_per_sec"],
            "speedup": similar[accept_key]["speedup_vs_naive"],
            "target_speedup": TARGET_MICROBATCH,
            "meets_target": similar[accept_key]["speedup_vs_naive"] >= TARGET_MICROBATCH,
        },
        "streaming": {
            "speedup": streaming["speedup"],
            "target_speedup": TARGET_STREAMING,
            "meets_target": streaming["speedup"] >= TARGET_STREAMING,
        },
    }

    payload = {
        "meta": bench_meta(
            smoke=args.smoke,
            geometry={
                "series_length": length,
                "dim": 8,
                "n_heads": 1,
                "n_layers": 2,
                "n_groups": 64,
                "n_requests": n_requests,
            },
            arms={
                "naive_loop": "batch-of-one engine calls, training grouping config "
                              "(recluster every request) — the legacy serving pattern",
                "batched_bs*": "MicroBatcher at the given batch size, training "
                               "grouping config (isolates pure batching)",
                "serving_stack_bs*": "MicroBatcher + serving grouping policy "
                                     f"(recluster_every={SERVING_RECLUSTER_EVERY}, "
                                     "Lemma-1 drift guard) — the full serve stack",
            },
        ),
        "microbatch": microbatch,
        "streaming": streaming,
        "acceptance": acceptance,
    }

    mb = acceptance["microbatch"]
    print(
        f"microbatch ({accept_key}, similar regime): "
        f"{mb['naive_requests_per_sec']:.1f} -> {mb['batched_requests_per_sec']:.1f} req/s "
        f"= {mb['speedup']:.2f}x (target >= {mb['target_speedup']}x; met={mb['meets_target']})"
    )
    st = acceptance["streaming"]
    print(
        f"streaming: {streaming['full_recompute_seconds']:.3f}s full recompute -> "
        f"{streaming['streaming_seconds']:.3f}s streamed = {st['speedup']:.2f}x "
        f"(target >= {st['target_speedup']}x; met={st['meets_target']})"
    )
    emit_payload(payload, "serving", args.out, smoke=args.smoke)
    return payload


if __name__ == "__main__":
    main()
