"""Table 3: pretraining + few-label finetuning vs training from scratch.

Paper shape to reproduce:
* pretraining improves (or at least does not hurt) few-label accuracy for
  the RITA-architecture methods;
* the RITA methods outperform TST in the few-label regime;
* Linformer is the weakest RITA variant here (its extra projection
  parameters overfit) — checked as a soft trend, not per-dataset.
"""

import pytest

#: Full-experiment benchmark: excluded from the fast tier (-m 'not slow').
pytestmark = pytest.mark.slow

from repro.experiments import BENCH, format_table, run_pretrain_finetune

from conftest import run_once

# Larger validation sets than the default bench scale: with ~12 samples
# one flip moves accuracy by 8 points, drowning the pretraining signal.
SCALE = BENCH.with_(
    epochs=6, pretrain_epochs=4, size_scale=0.008, finetune_per_class=10, lr=3e-3
)

_rows_by_dataset = {}


@pytest.mark.parametrize("dataset", ["wisdm", "hhar", "rwhar", "ecg"])
def test_table3_pretrain_finetune(benchmark, record, dataset):
    scale = SCALE if dataset != "ecg" else SCALE.with_(
        size_scale=0.003, length_scale=0.2, pretrain_size_scale=0.0004
    )
    rows = run_once(
        benchmark, lambda: run_pretrain_finetune(dataset, scale=scale, seed=13)
    )
    _rows_by_dataset[dataset] = rows
    record(
        f"table3_pretrain_{dataset}",
        format_table(
            rows,
            columns=["dataset", "method", "scratch", "pretrained", "note"],
            title=f"Table 3 — pretrain + few-label finetune ({dataset})",
        ),
    )
    by_method = {r["method"]: r for r in rows}
    group = by_method["Group Attn."]
    # Pretraining must not collapse accuracy (paper: it always helps;
    # at smoke scale we allow a noise margin).
    assert group["pretrained"] >= group["scratch"] - 0.15
    # Group attention's few-label accuracy is above chance.
    chance = {"wisdm": 1 / 18, "hhar": 1 / 5, "rwhar": 1 / 8, "ecg": 1 / 9}[dataset]
    assert max(group["scratch"], group["pretrained"]) > chance
