"""Grouping-engine benchmark: the perf trajectory file for the K-means path.

The paper's efficiency claim (Sec. 4.4, Table 4, Fig. 4) rests on the
grouping step staying cheap — O(nN) per training step.  This benchmark
tracks grouping **seconds per step** across the grid

* ``n``        in {256, 1024, 4096}   (sequence length)
* ``N``        in {16, 64, 256}       (number of groups)
* strategies:  ``cold``  — fresh random-init K-means every step,
               ``warm``  — previous centroids warm-start the next K-means,
               ``amortized`` — ``recluster_every=4``: intermediate steps
               reuse the cached partition behind the Lemma-1 drift guard,
* backends:    ``reference`` (np.add.at oracle) vs ``fused``
               (sort+reduceat segment kernels, pooled distance buffer),

plus a ``legacy`` baseline — the exact pre-refactor ``batched_kmeans``
(np.add.at / np.maximum.at scatter reductions, per-iteration distance
allocations, Python k-means++ loop) run cold each step, which is what the
repo shipped before the grouping engine moved onto the kernel backends.

Timing comes from ``GroupAttention.grouping_seconds_total`` deltas, i.e.
the instrumented production code path, not a reimplementation.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_grouping.py [out.json] [--smoke]

Emits ``benchmarks/BENCH_grouping.json`` by default.  ``--smoke`` runs a
tiny grid (seconds, exercised by CI) so the script cannot silently rot.
Numbers are wall-clock on whatever machine runs this; compare ratios, not
absolute seconds, across machines.
"""

from __future__ import annotations

import time
from pathlib import Path
import sys

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import bench_meta, emit_payload, parse_bench_args

import repro.kernels as K
from repro.attention.group import GroupAttention
from repro.autograd.tensor import Tensor, no_grad
from repro.rng import get_rng

BATCH = 2
HEADS = 4
HEAD_DIM = 32
TARGET_SPEEDUP = 2.0
ACCEPTANCE = (1024, 64)  # the (n, N) cell the acceptance ratio is read from


# ----------------------------------------------------------------------
# Legacy baseline: the pre-refactor batched_kmeans, reproduced verbatim
# (np.add.at scatter-adds, per-iteration (B, n, N) allocations, Python
# k-means++ loop) so future machines can still measure the old cost.
# ----------------------------------------------------------------------
def _legacy_pairwise_sq_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    point_sq = np.einsum("bnd,bnd->bn", points, points, optimize=True)[:, :, None]
    center_sq = np.einsum("bkd,bkd->bk", centers, centers, optimize=True)[:, None, :]
    distances = point_sq + center_sq - 2.0 * (points @ np.swapaxes(centers, -1, -2))
    np.maximum(distances, 0.0, out=distances)
    return distances


def _legacy_batched_kmeans(points: np.ndarray, n_clusters: int, n_iters: int, rng) -> None:
    batch, n, dim = points.shape
    n_clusters = int(min(n_clusters, n))
    choice = np.argsort(rng.random((batch, n)), axis=1)[:, :n_clusters]
    centers = np.take_along_axis(points, choice[:, :, None], axis=1).copy()
    batch_index = np.arange(batch)[:, None]
    for _ in range(max(n_iters, 1)):
        distances = _legacy_pairwise_sq_distances(points, centers)
        assignments = distances.argmin(axis=-1)
        sums = np.zeros((batch, n_clusters, dim), dtype=points.dtype)
        flat_ids = (assignments + np.arange(batch)[:, None] * n_clusters).reshape(-1)
        np.add.at(sums.reshape(batch * n_clusters, dim), flat_ids, points.reshape(-1, dim))
        counts = np.zeros((batch, n_clusters), dtype=np.int64)
        np.add.at(counts.reshape(-1), flat_ids, 1)
        nonempty = counts > 0
        centers = np.where(
            nonempty[:, :, None], sums / np.maximum(counts, 1)[:, :, None], centers
        )
    distances = _legacy_pairwise_sq_distances(points, centers)
    assignments = distances.argmin(axis=-1)
    member_sq = distances[batch_index, np.arange(n)[None, :], assignments]
    counts = np.zeros((batch, n_clusters), dtype=np.int64)
    flat_ids = (assignments + np.arange(batch)[:, None] * n_clusters).reshape(-1)
    np.add.at(counts.reshape(-1), flat_ids, 1)
    radii_sq = np.zeros((batch, n_clusters), dtype=points.dtype)
    np.maximum.at(radii_sq.reshape(-1), flat_ids, member_sq.reshape(-1))
    np.sqrt(radii_sq)


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def _drifting_keys(base: np.ndarray, rng, scale: float = 1e-3) -> np.ndarray:
    """Per-step keys: the same distribution nudged slightly, mimicking the
    slow embedding drift between training steps the paper leans on."""
    noise = rng.standard_normal(base.shape).astype(base.dtype)
    return base + scale * noise


def bench_legacy(n: int, n_groups: int, steps: int, warmup: int) -> float:
    rng = np.random.default_rng(0)
    base = rng.standard_normal((BATCH * HEADS, n, HEAD_DIM)).astype(np.float32)
    init_rng = get_rng(np.random.default_rng(1))
    for _ in range(warmup):
        _legacy_batched_kmeans(_drifting_keys(base, rng), n_groups, 2, init_rng)
    started = time.perf_counter()
    for _ in range(steps):
        _legacy_batched_kmeans(_drifting_keys(base, rng), n_groups, 2, init_rng)
    return (time.perf_counter() - started) / steps


def bench_strategy(
    n: int, n_groups: int, strategy: str, backend: str, steps: int, warmup: int
) -> dict:
    rng = np.random.default_rng(0)
    base = rng.standard_normal((BATCH, HEADS, n, HEAD_DIM)).astype(np.float32)
    kwargs: dict = {"n_groups": n_groups, "rng": np.random.default_rng(1)}
    if strategy == "cold":
        kwargs["warm_start"] = False
    elif strategy == "amortized":
        # A generous drift guard so the cadence (not the guard) is what the
        # cell measures; the guard's O(nd) check still runs every step.
        kwargs.update(recluster_every=4, drift_tolerance=1e9)
    mechanism = GroupAttention(**kwargs)
    with K.use_backend(backend), no_grad():
        for _ in range(warmup):
            keys = Tensor(_drifting_keys(base, rng))
            mechanism(keys, keys, keys)
        seconds_before = mechanism.grouping_seconds_total
        reclusters_before = mechanism.reclusters_total
        for _ in range(steps):
            keys = Tensor(_drifting_keys(base, rng))
            mechanism(keys, keys, keys)
    return {
        "seconds_per_step": (mechanism.grouping_seconds_total - seconds_before) / steps,
        "reclusters": mechanism.reclusters_total - reclusters_before,
        "steps": steps,
    }


def run_grid(lengths, group_sizes, steps: int, warmup: int) -> list[dict]:
    grid = []
    for n in lengths:
        for n_groups in group_sizes:
            if n_groups > n:
                continue
            cell: dict = {
                "n": n,
                "n_groups": n_groups,
                "legacy_cold_seconds_per_step": bench_legacy(n, n_groups, steps, warmup),
            }
            for backend in ("reference", "fused"):
                cell[backend] = {
                    strategy: bench_strategy(n, n_groups, strategy, backend, steps, warmup)
                    for strategy in ("cold", "warm", "amortized")
                }
            grid.append(cell)
            print(
                f"n={n:5d} N={n_groups:4d}  "
                f"legacy={cell['legacy_cold_seconds_per_step'] * 1e3:7.2f} ms  "
                f"fused cold={cell['fused']['cold']['seconds_per_step'] * 1e3:7.2f} "
                f"warm={cell['fused']['warm']['seconds_per_step'] * 1e3:7.2f} "
                f"amortized={cell['fused']['amortized']['seconds_per_step'] * 1e3:7.2f} ms/step"
            )
    return grid


def acceptance_summary(grid: list[dict]) -> dict | None:
    for cell in grid:
        if (cell["n"], cell["n_groups"]) == ACCEPTANCE:
            baseline = cell["legacy_cold_seconds_per_step"]
            amortized = cell["fused"]["amortized"]["seconds_per_step"]
            return {
                "n": cell["n"],
                "n_groups": cell["n_groups"],
                "baseline_legacy_cold_seconds_per_step": baseline,
                "fused_amortized_seconds_per_step": amortized,
                "speedup": baseline / amortized,
                "target_speedup": TARGET_SPEEDUP,
                "meets_target": baseline / amortized >= TARGET_SPEEDUP,
            }
    return None


def main(argv: list[str] | None = None) -> dict:
    args = parse_bench_args(__doc__, argv)

    if args.smoke:
        lengths, group_sizes, steps, warmup = (64,), (8,), 3, 1
    else:
        # steps = 2 full recluster periods (recluster_every=4), so the
        # amortized cells measure exactly 2 reclusters + 6 cache reuses.
        lengths, group_sizes, steps, warmup = (256, 1024, 4096), (16, 64, 256), 8, 2

    grid = run_grid(lengths, group_sizes, steps, warmup)
    payload = {
        "meta": bench_meta(
            smoke=args.smoke,
            geometry={"batch": BATCH, "heads": HEADS, "head_dim": HEAD_DIM},
            strategies={
                "legacy": "pre-refactor np.add.at kmeans, cold init every step",
                "cold": "kernel-routed kmeans, cold init every step",
                "warm": "kernel-routed kmeans, centroid warm start",
                "amortized": "warm start + recluster_every=4 partition reuse",
            },
        ),
        "grid": grid,
        "acceptance": acceptance_summary(grid),
    }

    if payload["acceptance"] is not None:
        acc = payload["acceptance"]
        print(
            f"acceptance n={acc['n']} N={acc['n_groups']}: "
            f"legacy {acc['baseline_legacy_cold_seconds_per_step'] * 1e3:.2f} ms/step -> "
            f"fused+amortized {acc['fused_amortized_seconds_per_step'] * 1e3:.2f} ms/step "
            f"= {acc['speedup']:.2f}x (target >= {acc['target_speedup']}x; "
            f"met={acc['meets_target']})"
        )
    emit_payload(payload, "grouping", args.out, smoke=args.smoke)
    return payload


if __name__ == "__main__":
    main()
