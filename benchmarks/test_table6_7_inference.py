"""Tables 6-7: inference time over the validation set.

Paper shape to reproduce:
* on short series all methods are close;
* on long series (ECG, MGH) Group Attn. is the fastest;
* Vanilla and TST are N/A on MGH (cannot even run).
"""

import pytest

#: Full-experiment benchmark: excluded from the fast tier (-m 'not slow').
pytestmark = pytest.mark.slow

from repro.experiments import BENCH, format_table, run_inference_time

from conftest import run_once

SCALES = {
    "wisdm": BENCH,
    "hhar": BENCH,
    "rwhar": BENCH,
    "ecg": BENCH.with_(size_scale=0.003, length_scale=0.2),
    "mgh": BENCH.with_(size_scale=0.004, length_scale=0.05),
}


@pytest.mark.parametrize("dataset", ["wisdm", "hhar", "rwhar", "ecg"])
def test_table6_inference_classification(benchmark, record, dataset):
    rows = run_once(
        benchmark,
        lambda: run_inference_time(dataset, "classification", scale=SCALES[dataset], seed=37),
    )
    record(
        f"table6_inference_classification_{dataset}",
        format_table(
            rows,
            columns=["dataset", "method", "inference_seconds", "note"],
            title=f"Table 6 — inference time, classification ({dataset})",
        ),
    )
    by_method = {r["method"]: r for r in rows}
    assert by_method["Group Attn."]["inference_seconds"] > 0
    if dataset == "ecg":
        assert (
            by_method["Group Attn."]["inference_seconds"]
            < by_method["Vanilla"]["inference_seconds"]
        )


@pytest.mark.parametrize("dataset", ["ecg", "mgh"])
def test_table7_inference_imputation(benchmark, record, dataset):
    rows = run_once(
        benchmark,
        lambda: run_inference_time(dataset, "imputation", scale=SCALES[dataset], seed=41),
    )
    record(
        f"table7_inference_imputation_{dataset}",
        format_table(
            rows,
            columns=["dataset", "method", "inference_seconds", "note"],
            title=f"Table 7 — inference time, imputation ({dataset})",
        ),
    )
    by_method = {r["method"]: r for r in rows}
    if dataset == "mgh":
        assert by_method["Vanilla"]["note"] == "N/A (OOM)"
        assert by_method["TST"]["note"] == "N/A (OOM)"
        assert by_method["Group Attn."]["inference_seconds"] is not None
