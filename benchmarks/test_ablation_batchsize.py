"""Ablation: the batch-size predictor (Sec. 5.2) and its training effect.

Checks (a) prediction quality of the Alg. 2 + Alg. 3 pipeline against
ground-truth binary searches on the memory model, and (b) the paper's
claim that growing the batch as N shrinks reduces epoch time (they report
~30% for a doubling).
"""

import pytest

#: Full-experiment benchmark: excluded from the fast tier (-m 'not slow').
pytestmark = pytest.mark.slow

import numpy as np

import repro
from repro.experiments import BENCH, build_model, format_table
from repro.scheduler import BatchSizePredictor
from repro.simgpu import MemoryModel
from repro.tasks import ClassificationTask
from repro.train import Trainer

from conftest import run_once


def test_predictor_accuracy(benchmark, record):
    def run():
        model = MemoryModel(dim=64, n_heads=2, n_layers=8, ffn_dim=256)
        capacity = 4 * 1024 ** 3
        predictor = BatchSizePredictor(
            lambda b, l, n: model.step_bytes("group", b, l, n_groups=n), capacity
        )
        predictor.fit(l_max=10_000, n_points=80, rng=np.random.default_rng(0))
        rows = []
        errors = []
        for length, groups in [(500, 64), (2000, 64), (2000, 16), (10000, 64), (10000, 8)]:
            true = predictor.measure(length, groups)
            predicted = predictor.predict(length, groups)
            if true > 0:
                errors.append(abs(predicted - true) / true)
            rows.append({"L": length, "N": groups, "true_B": true, "predicted_B": predicted})
        return rows, float(np.mean(errors))

    rows, mean_error = run_once(benchmark, run)
    rows.append({"L": "mean rel err", "N": "", "true_B": "", "predicted_B": round(mean_error, 4)})
    record("ablation_batchsize_accuracy", format_table(
        rows, title="Batch-size predictor vs ground truth (Alg. 2 binary search)"
    ))
    assert mean_error < 0.35


def test_bigger_batch_is_faster_per_epoch(benchmark, record):
    """Paper: doubling the batch size cuts epoch time by ~30%."""

    def run():
        rng = np.random.default_rng(3)
        bundle = repro.load_dataset("hhar", size_scale=0.008, length_scale=0.25, rng=rng)

        def epoch_seconds(batch_size):
            model = build_model("group", bundle, BENCH, rng=np.random.default_rng(4))
            trainer = Trainer(
                model, ClassificationTask(), repro.AdamW(model.parameters(), lr=1e-3)
            )
            history = trainer.fit(
                bundle.train, epochs=2, batch_size=batch_size,
                rng=np.random.default_rng(5),
            )
            return history.epochs[-1].seconds  # second epoch: warmed up

        small = epoch_seconds(8)
        large = epoch_seconds(16)
        return small, large

    small, large = run_once(benchmark, run)
    record("ablation_batchsize_speed", format_table(
        [{"batch_size": 8, "epoch_seconds": small},
         {"batch_size": 16, "epoch_seconds": large},
         {"batch_size": "speedup", "epoch_seconds": small / large}],
        title="Epoch time vs batch size (group attention)",
    ))
    # Bigger batches amortize per-batch overhead: expect a visible speedup.
    assert large < small * 1.05
