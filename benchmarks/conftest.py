"""Shared benchmark harness.

Every benchmark regenerates one paper table/figure at the scaled-down
geometry, prints it in the paper's layout, and appends it to
``benchmarks/results/`` so EXPERIMENTS.md can reference the measured
numbers.  pytest-benchmark wraps each run (rounds=1 — these are full
training experiments, not microbenchmarks; the attention microbenchmark
file uses proper rounds).
"""

from __future__ import annotations

import os
import pathlib
import platform

import numpy as np
import pytest

import repro
import repro.kernels
from repro.experiments.grid import provenance as grid_provenance
from repro.experiments.grid.render import PYTEST_RECORD_GRID, PYTEST_RECORD_RUNNER
from repro.experiments.grid.store import GridStore

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


_RUN_STAMP: str | None = None


def _run_stamp() -> str:
    """Session-stable UTC timestamp: every file from one run matches."""
    global _RUN_STAMP
    if _RUN_STAMP is None:
        _RUN_STAMP = grid_provenance.utc_now()
    return _RUN_STAMP


def provenance_line() -> str:
    """One-line run-environment stamp appended to every result file.

    Timings in ``benchmarks/results/`` are only comparable within a single
    run on a single machine; this records which run produced each file.
    The timestamp is captured once per pytest session, so every file from
    one run carries the *identical* line — differing ``# run:`` lines in
    the results directory therefore reliably mean a mixed-run mosaic.
    Formatting lives in ``repro.experiments.grid.provenance.run_line`` so
    ``grid render`` regenerates these files byte-for-byte.
    """
    return grid_provenance.run_line(
        _run_stamp(), platform.platform(), platform.python_version(),
        np.__version__, os.cpu_count(),
    )


@pytest.fixture(scope="session", autouse=True)
def _float64_policy():
    """Pin float64 so table numbers keep their seed-era meaning.

    ``bench_kernels.py`` sweeps both dtypes explicitly via
    ``repro.kernels.dtype_scope``.
    """
    previous = repro.kernels.set_default_dtype(np.float64)
    yield
    repro.kernels.set_default_dtype(previous)


@pytest.fixture(autouse=True)
def _seed():
    repro.seed_all(2024)
    yield


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.hookimpl(wrapper=True, tryfirst=True)
def pytest_runtest_makereport(item, call):
    report = yield
    setattr(item, f"rep_{report.when}", report)
    return report


@pytest.fixture
def record(results_dir, request):
    """Print a table and persist it under benchmarks/results/.

    The write is deferred to fixture teardown and only happens when the
    test passed, so a failing run can never overwrite a committed result
    artifact with numbers that violate the suite's own assertions.
    """
    pending: list[tuple[str, str]] = []

    def _record(name: str, text: str) -> None:
        print("\n" + text)
        pending.append((name, text))

    yield _record

    call_report = getattr(request.node, "rep_call", None)
    if call_report is not None and call_report.passed:
        for name, text in pending:
            path = results_dir / f"{name}.txt"
            path.write_text(text + "\n" + provenance_line() + "\n")
            _log_to_grid(name, text)


def _log_to_grid(name: str, text: str) -> None:
    """Mirror a passing result into the experiment grid database.

    Only when ``RITA_GRID_DB`` points at an initialized grid database
    (see ``python -m repro.experiments.grid init``): the cell carries the
    same text and the same environment columns as the ``# run:`` stamp,
    so ``grid render`` can reproduce the file and provenance questions
    become SQL (EXPERIMENTS.md 'Regeneration policy').
    """
    db_path = os.environ.get("RITA_GRID_DB")
    if not db_path:
        return
    with GridStore(db_path) as store:
        store.log_external(
            PYTEST_RECORD_GRID,
            PYTEST_RECORD_RUNNER,
            {"artifact": name},
            {"text": text},
            provenance=grid_provenance.capture(rita_seed=2024),
            started_utc=_run_stamp(),
        )


def run_once(benchmark, fn):
    """Run a whole-experiment function exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
