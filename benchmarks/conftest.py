"""Shared benchmark harness.

Every benchmark regenerates one paper table/figure at the scaled-down
geometry, prints it in the paper's layout, and appends it to
``benchmarks/results/`` so EXPERIMENTS.md can reference the measured
numbers.  pytest-benchmark wraps each run (rounds=1 — these are full
training experiments, not microbenchmarks; the attention microbenchmark
file uses proper rounds).
"""

from __future__ import annotations

import datetime
import os
import pathlib
import platform

import numpy as np
import pytest

import repro
import repro.kernels

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


_RUN_STAMP: str | None = None


def provenance_line() -> str:
    """One-line run-environment stamp appended to every result file.

    Timings in ``benchmarks/results/`` are only comparable within a single
    run on a single machine; this records which run produced each file.
    The timestamp is captured once per pytest session, so every file from
    one run carries the *identical* line — differing ``# run:`` lines in
    the results directory therefore reliably mean a mixed-run mosaic.
    """
    global _RUN_STAMP
    if _RUN_STAMP is None:
        _RUN_STAMP = datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        )
    return (
        f"# run: {_RUN_STAMP} · {platform.platform()} · "
        f"Python {platform.python_version()} · NumPy {np.__version__} · "
        f"{os.cpu_count()} CPUs"
    )


@pytest.fixture(scope="session", autouse=True)
def _float64_policy():
    """Pin float64 so table numbers keep their seed-era meaning.

    ``bench_kernels.py`` sweeps both dtypes explicitly via
    ``repro.kernels.dtype_scope``.
    """
    previous = repro.kernels.set_default_dtype(np.float64)
    yield
    repro.kernels.set_default_dtype(previous)


@pytest.fixture(autouse=True)
def _seed():
    repro.seed_all(2024)
    yield


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.hookimpl(wrapper=True, tryfirst=True)
def pytest_runtest_makereport(item, call):
    report = yield
    setattr(item, f"rep_{report.when}", report)
    return report


@pytest.fixture
def record(results_dir, request):
    """Print a table and persist it under benchmarks/results/.

    The write is deferred to fixture teardown and only happens when the
    test passed, so a failing run can never overwrite a committed result
    artifact with numbers that violate the suite's own assertions.
    """
    pending: list[tuple[str, str]] = []

    def _record(name: str, text: str) -> None:
        print("\n" + text)
        pending.append((name, text))

    yield _record

    call_report = getattr(request.node, "rep_call", None)
    if call_report is not None and call_report.passed:
        for name, text in pending:
            path = results_dir / f"{name}.txt"
            path.write_text(text + "\n" + provenance_line() + "\n")


def run_once(benchmark, fn):
    """Run a whole-experiment function exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
