"""Shared benchmark harness.

Every benchmark regenerates one paper table/figure at the scaled-down
geometry, prints it in the paper's layout, and appends it to
``benchmarks/results/`` so EXPERIMENTS.md can reference the measured
numbers.  pytest-benchmark wraps each run (rounds=1 — these are full
training experiments, not microbenchmarks; the attention microbenchmark
file uses proper rounds).
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

import repro
import repro.kernels

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _float64_policy():
    """Pin float64 so table numbers keep their seed-era meaning.

    ``bench_kernels.py`` sweeps both dtypes explicitly via
    ``repro.kernels.dtype_scope``.
    """
    previous = repro.kernels.set_default_dtype(np.float64)
    yield
    repro.kernels.set_default_dtype(previous)


@pytest.fixture(autouse=True)
def _seed():
    repro.seed_all(2024)
    yield


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir):
    """Print a table and persist it under benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        print("\n" + text)
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")

    return _record


def run_once(benchmark, fn):
    """Run a whole-experiment function exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
