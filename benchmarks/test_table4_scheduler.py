"""Table 4: adaptive scheduler vs fixed group count N.

Paper shape to reproduce:
* the adaptive scheduler (any eps in {1.5, 2, 3}) achieves accuracy/MSE
  comparable to the best fixed N;
* its training time beats the large fixed-N settings (it shrinks N);
* results are robust across eps — "tuning free" — while fixed N varies.
"""

import pytest

#: Full-experiment benchmark: excluded from the fast tier (-m 'not slow').
pytestmark = pytest.mark.slow

from repro.experiments import BENCH, format_table, run_scheduler_ablation

from conftest import run_once


def test_table4_ecg_classification(benchmark, record):
    scale = BENCH.with_(epochs=3, size_scale=0.003, length_scale=0.2, lr=2e-3)
    rows = run_once(
        benchmark,
        lambda: run_scheduler_ablation(
            "ecg", "classification", scale=scale,
            epsilons=(1.5, 2.0, 3.0), fixed_ns=(4, 16, 64), seed=17,
        ),
    )
    record(
        "table4_scheduler_ecg",
        format_table(
            rows,
            columns=["scheduler", "parameter", "metric", "epoch_seconds", "final_groups"],
            title="Table 4 — adaptive vs fixed N (ECG classification, metric=accuracy)",
        ),
    )
    dynamic = [r for r in rows if r["scheduler"] == "Dynamic"]
    fixed = [r for r in rows if r["scheduler"] == "Fixed"]
    best_fixed = max(r["metric"] for r in fixed)
    best_dynamic = max(r["metric"] for r in dynamic)
    # Adaptive is comparable to the best fixed N (noise margin at this scale).
    assert best_dynamic >= best_fixed - 0.2
    # Robustness across eps: spread of dynamic metrics is small.
    spread = max(r["metric"] for r in dynamic) - min(r["metric"] for r in dynamic)
    assert spread <= 0.35


def test_table4_mgh_imputation(benchmark, record):
    scale = BENCH.with_(epochs=2, size_scale=0.004, length_scale=0.05)
    rows = run_once(
        benchmark,
        lambda: run_scheduler_ablation(
            "mgh", "imputation", scale=scale,
            epsilons=(1.5, 2.0, 3.0), fixed_ns=(8, 32, 128), seed=19,
        ),
    )
    record(
        "table4_scheduler_mgh",
        format_table(
            rows,
            columns=["scheduler", "parameter", "metric", "epoch_seconds", "final_groups"],
            title="Table 4 — adaptive vs fixed N (MGH imputation, metric=MSE)",
        ),
    )
    dynamic = [r for r in rows if r["scheduler"] == "Dynamic"]
    fixed = [r for r in rows if r["scheduler"] == "Fixed"]
    # Dynamic scheduling reaches MSE comparable to the best fixed N.
    best_fixed_mse = min(r["metric"] for r in fixed)
    best_dynamic_mse = min(r["metric"] for r in dynamic)
    assert best_dynamic_mse <= best_fixed_mse * 3 + 0.05
    # And is not slower than the largest fixed N (which it undercuts by
    # shrinking groups).
    slowest_fixed = max(r["epoch_seconds"] for r in fixed)
    assert all(r["epoch_seconds"] <= slowest_fixed * 1.3 for r in dynamic)
