"""Figure 3: full-label classification — accuracy (a) and training time (b).

Paper shape to reproduce:
* every RITA-architecture method (Vanilla/Performer/Linformer/Group)
  outperforms TST on long series (ECG), where TST's concat classifier
  overfits;
* Group Attn. accuracy is comparable to Vanilla (approximation quality);
* Group Attn. trains faster than Vanilla, with the gap growing with
  series length (ECG >> HAR datasets).
"""

import pytest

#: Full-experiment benchmark: excluded from the fast tier (-m 'not slow').
pytestmark = pytest.mark.slow

from repro.experiments import BENCH, format_table, run_classification

from conftest import run_once

#: Per-dataset scale tweaks: ECG is long, so fewer samples but enough
#: epochs to leave chance level; HAR datasets are short and cheap.
SCALES = {
    "wisdm": BENCH.with_(epochs=6, size_scale=0.008, lr=3e-3),
    "hhar": BENCH.with_(epochs=6, size_scale=0.008, lr=3e-3),
    "rwhar": BENCH.with_(epochs=6, size_scale=0.008, lr=3e-3),
    "ecg": BENCH.with_(epochs=3, size_scale=0.003, length_scale=0.2, lr=3e-3),
}

_all_rows = {}


@pytest.mark.parametrize("dataset", ["wisdm", "hhar", "rwhar", "ecg"])
def test_fig3_classification(benchmark, record, dataset):
    rows = run_once(
        benchmark, lambda: run_classification(dataset, scale=SCALES[dataset], seed=7)
    )
    _all_rows[dataset] = rows
    record(
        f"fig3_classification_{dataset}",
        format_table(
            rows,
            columns=["dataset", "method", "accuracy", "epoch_seconds", "note"],
            title=f"Figure 3 — full-label classification ({dataset})",
        ),
    )
    by_method = {r["method"]: r for r in rows}
    chance = {"wisdm": 1 / 18, "hhar": 1 / 5, "rwhar": 1 / 8, "ecg": 1 / 9}[dataset]
    # Group attention learns above chance everywhere.
    assert by_method["Group Attn."]["accuracy"] > chance
    # Efficiency shape: on the long dataset, group attention is faster
    # than exact attention by a clear margin.
    if dataset == "ecg":
        assert (
            by_method["Group Attn."]["epoch_seconds"]
            < by_method["Vanilla"]["epoch_seconds"] / 1.5
        )
        assert (
            by_method["Group Attn."]["epoch_seconds"]
            < by_method["TST"]["epoch_seconds"] / 1.5
        )
